// Package trace defines the persistent-memory operation trace that flows
// from the execution environment (internal/interp) to the bug detector
// (internal/pmcheck) and the fixer (internal/core). It mirrors the
// information the paper requires from a PM bug-finding tool (§4.1): each
// event carries its kind, the PM address range involved, the IR location
// of the instruction, the source location, and the full call stack at the
// time of the event. Traces serialize to a stable pmemcheck-like text form
// so they can be stored and fed to the CLI tools.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hippocrates/internal/ir"
)

// Kind is the event type.
type Kind int

// The event kinds. Only PM-relevant operations are traced (as with
// pmemcheck); volatile stores do not appear.
const (
	KindStore Kind = iota
	KindNTStore
	KindFlush
	KindFence
	// KindCheckpoint is a durability point: a crash may occur here and
	// every earlier PM store must be durable (the paper's instruction I
	// in X → F(X) → M → I). The end of the program is an implicit
	// durability point appended by the interpreter.
	KindCheckpoint
	// KindAlloc records a persistent-memory allocation (a pm_alloc or
	// pm_root call, or a persistent global at startup, in which case Sym
	// holds the global's name). PM bug finders know the persistent
	// regions (pmemcheck tracks registered pools), and Trace-AA derives
	// object PM-ness from these events.
	KindAlloc
)

func (k Kind) String() string {
	switch k {
	case KindStore:
		return "store"
	case KindNTStore:
		return "ntstore"
	case KindFlush:
		return "flush"
	case KindFence:
		return "fence"
	case KindCheckpoint:
		return "checkpoint"
	case KindAlloc:
		return "alloc"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Frame is one call-stack entry. Frame zero of an event is the function
// containing the event's instruction; outer frames identify the call
// instruction that was executing in each caller.
type Frame struct {
	// Func is the IR function name.
	Func string
	// InstrID is the per-function instruction ID ((*ir.Func).Renumber).
	InstrID int
	// Loc is the front-end source location, when available.
	Loc ir.Loc
}

func (f Frame) String() string {
	if f.Loc.IsZero() {
		return fmt.Sprintf("%s@%d", f.Func, f.InstrID)
	}
	return fmt.Sprintf("%s@%d(%s)", f.Func, f.InstrID, f.Loc)
}

// Event is one traced PM operation.
type Event struct {
	Seq    int
	Kind   Kind
	Addr   uint64
	Size   int
	FlushK ir.FlushKind // KindFlush only
	FenceK ir.FenceKind // KindFence only
	// Tid is the simulated thread that issued the event (0 = main). The
	// textual form only carries it when nonzero, so single-threaded
	// traces serialize exactly as they always have.
	Tid int
	// Val is the stored value for 8-byte store/ntstore events whose value
	// is a PM address (a potential pointer publish). Offline detectors
	// replay payload bytes from it; it is omitted from the textual form
	// otherwise (PM addresses are never zero).
	Val uint64
	// Sym names the persistent global for startup KindAlloc events.
	Sym string
	// Stack is the call stack, innermost frame first.
	Stack []Frame
}

// Site returns the innermost frame (the instruction that produced the event).
func (e *Event) Site() Frame {
	if len(e.Stack) == 0 {
		return Frame{}
	}
	return e.Stack[0]
}

// Trace is an ordered event sequence.
type Trace struct {
	// Program names the module the trace was recorded against.
	Program string
	Events  []*Event
}

// Append adds an event, assigning the next sequence number.
func (t *Trace) Append(e *Event) *Event {
	e.Seq = len(t.Events)
	t.Events = append(t.Events, e)
	return e
}

// NumKinds is the number of event kinds, for dense per-kind arrays.
const NumKinds = int(KindAlloc) + 1

// KindCounts returns the number of events of each kind as a dense array
// indexed by Kind. The telemetry layer calls it once per interpreter
// run, so it is allocation-free by design (it used to build a map per
// call); format names with Kind(i).String() when publishing.
func (t *Trace) KindCounts() [NumKinds]int {
	var out [NumKinds]int
	for _, e := range t.Events {
		if k := int(e.Kind); k >= 0 && k < NumKinds {
			out[k]++
		}
	}
	return out
}

// Stores returns the store and non-temporal-store events.
func (t *Trace) Stores() []*Event {
	var out []*Event
	for _, e := range t.Events {
		if e.Kind == KindStore || e.Kind == KindNTStore {
			out = append(out, e)
		}
	}
	return out
}

// Write serializes the trace in the textual form.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "pmtrace %s\n", t.Program)
	for _, e := range t.Events {
		fmt.Fprintf(bw, "#%d %s", e.Seq, e.Kind)
		switch e.Kind {
		case KindStore, KindNTStore:
			fmt.Fprintf(bw, " addr=0x%x size=%d", e.Addr, e.Size)
			if e.Val != 0 {
				fmt.Fprintf(bw, " val=0x%x", e.Val)
			}
		case KindFlush:
			fmt.Fprintf(bw, " %s addr=0x%x", e.FlushK, e.Addr)
		case KindFence:
			fmt.Fprintf(bw, " %s", e.FenceK)
		case KindCheckpoint:
			// No payload.
		case KindAlloc:
			fmt.Fprintf(bw, " addr=0x%x size=%d", e.Addr, e.Size)
			if e.Sym != "" {
				fmt.Fprintf(bw, " sym=@%s", e.Sym)
			}
		}
		if e.Tid != 0 {
			fmt.Fprintf(bw, " tid=%d", e.Tid)
		}
		for _, f := range e.Stack {
			fmt.Fprintf(bw, " | %s", f)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// String renders the textual form.
func (t *Trace) String() string {
	var sb strings.Builder
	if err := t.Write(&sb); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}

// Parse reads the textual form back.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "pmtrace ") {
		return nil, fmt.Errorf("trace: missing pmtrace header")
	}
	t := &Trace{Program: strings.TrimSpace(strings.TrimPrefix(header, "pmtrace "))}
	ln := 1
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := parseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", ln, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}

// ParseString parses a serialized trace from a string.
func ParseString(s string) (*Trace, error) { return Parse(strings.NewReader(s)) }

func parseEvent(line string) (*Event, error) {
	parts := strings.Split(line, " | ")
	head := strings.Fields(parts[0])
	if len(head) < 2 || !strings.HasPrefix(head[0], "#") {
		return nil, fmt.Errorf("malformed event %q", line)
	}
	seq, err := strconv.Atoi(head[0][1:])
	if err != nil {
		return nil, fmt.Errorf("malformed sequence %q", head[0])
	}
	e := &Event{Seq: seq}
	attrs := head[2:]
	switch head[1] {
	case "store", "ntstore":
		e.Kind = KindStore
		if head[1] == "ntstore" {
			e.Kind = KindNTStore
		}
		for _, a := range attrs {
			switch {
			case strings.HasPrefix(a, "addr=0x"):
				v, err := strconv.ParseUint(a[len("addr=0x"):], 16, 64)
				if err != nil {
					return nil, err
				}
				e.Addr = v
			case strings.HasPrefix(a, "size="):
				v, err := strconv.Atoi(a[len("size="):])
				if err != nil {
					return nil, err
				}
				e.Size = v
			case strings.HasPrefix(a, "val=0x"):
				v, err := strconv.ParseUint(a[len("val=0x"):], 16, 64)
				if err != nil {
					return nil, err
				}
				e.Val = v
			case strings.HasPrefix(a, "tid="):
				v, err := strconv.Atoi(a[len("tid="):])
				if err != nil {
					return nil, err
				}
				e.Tid = v
			}
		}
	case "flush":
		e.Kind = KindFlush
		if len(attrs) < 2 {
			return nil, fmt.Errorf("malformed flush %q", line)
		}
		switch attrs[0] {
		case "clwb":
			e.FlushK = ir.CLWB
		case "clflushopt":
			e.FlushK = ir.CLFLUSHOPT
		case "clflush":
			e.FlushK = ir.CLFLUSH
		default:
			return nil, fmt.Errorf("unknown flush kind %q", attrs[0])
		}
		for _, a := range attrs[1:] {
			switch {
			case strings.HasPrefix(a, "addr=0x"):
				v, err := strconv.ParseUint(a[len("addr=0x"):], 16, 64)
				if err != nil {
					return nil, err
				}
				e.Addr = v
			case strings.HasPrefix(a, "tid="):
				v, err := strconv.Atoi(a[len("tid="):])
				if err != nil {
					return nil, err
				}
				e.Tid = v
			}
		}
	case "fence":
		e.Kind = KindFence
		if len(attrs) < 1 {
			return nil, fmt.Errorf("malformed fence %q", line)
		}
		switch attrs[0] {
		case "sfence":
			e.FenceK = ir.SFENCE
		case "mfence":
			e.FenceK = ir.MFENCE
		default:
			return nil, fmt.Errorf("unknown fence kind %q", attrs[0])
		}
		for _, a := range attrs[1:] {
			if strings.HasPrefix(a, "tid=") {
				v, err := strconv.Atoi(a[len("tid="):])
				if err != nil {
					return nil, err
				}
				e.Tid = v
			}
		}
	case "checkpoint":
		e.Kind = KindCheckpoint
		for _, a := range attrs {
			if strings.HasPrefix(a, "tid=") {
				v, err := strconv.Atoi(a[len("tid="):])
				if err != nil {
					return nil, err
				}
				e.Tid = v
			}
		}
	case "alloc":
		e.Kind = KindAlloc
		for _, a := range attrs {
			switch {
			case strings.HasPrefix(a, "addr=0x"):
				v, err := strconv.ParseUint(a[len("addr=0x"):], 16, 64)
				if err != nil {
					return nil, err
				}
				e.Addr = v
			case strings.HasPrefix(a, "size="):
				v, err := strconv.Atoi(a[len("size="):])
				if err != nil {
					return nil, err
				}
				e.Size = v
			case strings.HasPrefix(a, "sym=@"):
				e.Sym = a[len("sym=@"):]
			case strings.HasPrefix(a, "tid="):
				v, err := strconv.Atoi(a[len("tid="):])
				if err != nil {
					return nil, err
				}
				e.Tid = v
			}
		}
	default:
		return nil, fmt.Errorf("unknown event kind %q", head[1])
	}
	for _, fs := range parts[1:] {
		f, err := parseFrame(strings.TrimSpace(fs))
		if err != nil {
			return nil, err
		}
		e.Stack = append(e.Stack, f)
	}
	return e, nil
}

func parseFrame(s string) (Frame, error) {
	var f Frame
	// Forms: "func@12" or "func@12(file:line)".
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return f, fmt.Errorf("malformed frame %q", s)
		}
		locStr := s[i+1 : len(s)-1]
		s = s[:i]
		j := strings.LastIndexByte(locStr, ':')
		if j < 0 {
			return f, fmt.Errorf("malformed frame location %q", locStr)
		}
		n, err := strconv.Atoi(locStr[j+1:])
		if err != nil {
			return f, fmt.Errorf("malformed frame line %q", locStr)
		}
		f.Loc = ir.Loc{File: locStr[:j], Line: n}
	}
	at := strings.LastIndexByte(s, '@')
	if at < 0 {
		return f, fmt.Errorf("malformed frame %q", s)
	}
	id, err := strconv.Atoi(s[at+1:])
	if err != nil {
		return f, fmt.Errorf("malformed frame instruction id %q", s)
	}
	f.Func = s[:at]
	f.InstrID = id
	return f, nil
}
