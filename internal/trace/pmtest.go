package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hippocrates/internal/ir"
)

// This file implements the PMTest-style input adapter. The paper's tool
// accepts traces from more than one bug finder (§5.1: "it currently
// supports pmemcheck and PMTest; we found it easy to port PMTest to
// provide the same information"), so the trace package reads a second,
// PMTest-shaped log format in addition to its native pmemcheck-style form.
// The dialect mirrors PMTest's ordered operation records:
//
//	PMTest v1 <program>
//	REGISTER 0x<addr> <size> [@sym]               ; persistent region
//	STORE 0x<addr> <size> @ f:3:file:9 < main:7
//	NTSTORE 0x<addr> <size> @ ...
//	FLUSH clwb|clflushopt|clflush 0x<addr> @ ...
//	FENCE sfence|mfence @ ...
//	CHECK @ ...                                   ; durability point
//
// Stacks are innermost-first, frames separated by " < ", each frame
// "func:instrID" optionally suffixed ":file:line".

// ParsePMTest reads a PMTest-style log into a Trace.
func ParsePMTest(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("pmtest: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 2 || header[0] != "PMTest" || header[1] != "v1" {
		return nil, fmt.Errorf("pmtest: missing 'PMTest v1' header")
	}
	t := &Trace{}
	if len(header) > 2 {
		t.Program = header[2]
	}
	ln := 1
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		e, err := parsePMTestLine(line)
		if err != nil {
			return nil, fmt.Errorf("pmtest: line %d: %w", ln, err)
		}
		t.Append(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pmtest: %w", err)
	}
	return t, nil
}

// ParsePMTestString parses a PMTest-style log from a string.
func ParsePMTestString(s string) (*Trace, error) { return ParsePMTest(strings.NewReader(s)) }

func parsePMTestLine(line string) (*Event, error) {
	head, stackStr, hasStack := strings.Cut(line, " @ ")
	fields := strings.Fields(head)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty record")
	}
	e := &Event{}
	switch fields[0] {
	case "STORE", "NTSTORE":
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed %s record", fields[0])
		}
		addr, err := parseHexAddr(fields[1])
		if err != nil {
			return nil, err
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("malformed size %q", fields[2])
		}
		e.Kind, e.Addr, e.Size = KindStore, addr, size
		if fields[0] == "NTSTORE" {
			e.Kind = KindNTStore
		}
	case "FLUSH":
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed FLUSH record")
		}
		switch fields[1] {
		case "clwb":
			e.FlushK = ir.CLWB
		case "clflushopt":
			e.FlushK = ir.CLFLUSHOPT
		case "clflush":
			e.FlushK = ir.CLFLUSH
		default:
			return nil, fmt.Errorf("unknown flush kind %q", fields[1])
		}
		addr, err := parseHexAddr(fields[2])
		if err != nil {
			return nil, err
		}
		e.Kind, e.Addr = KindFlush, addr
	case "FENCE":
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed FENCE record")
		}
		switch fields[1] {
		case "sfence":
			e.FenceK = ir.SFENCE
		case "mfence":
			e.FenceK = ir.MFENCE
		default:
			return nil, fmt.Errorf("unknown fence kind %q", fields[1])
		}
		e.Kind = KindFence
	case "CHECK":
		e.Kind = KindCheckpoint
	case "REGISTER":
		if len(fields) < 3 {
			return nil, fmt.Errorf("malformed REGISTER record")
		}
		addr, err := parseHexAddr(fields[1])
		if err != nil {
			return nil, err
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("malformed size %q", fields[2])
		}
		e.Kind, e.Addr, e.Size = KindAlloc, addr, size
		if len(fields) > 3 && strings.HasPrefix(fields[3], "@") {
			e.Sym = fields[3][1:]
		}
	default:
		return nil, fmt.Errorf("unknown record %q", fields[0])
	}
	if hasStack {
		for _, fs := range strings.Split(stackStr, " < ") {
			f, err := parsePMTestFrame(strings.TrimSpace(fs))
			if err != nil {
				return nil, err
			}
			e.Stack = append(e.Stack, f)
		}
	}
	return e, nil
}

func parseHexAddr(s string) (uint64, error) {
	if !strings.HasPrefix(s, "0x") {
		return 0, fmt.Errorf("malformed address %q", s)
	}
	v, err := strconv.ParseUint(s[2:], 16, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed address %q", s)
	}
	return v, nil
}

// parsePMTestFrame parses "func:3" or "func:3:file:9".
func parsePMTestFrame(s string) (Frame, error) {
	parts := strings.Split(s, ":")
	var f Frame
	switch len(parts) {
	case 2:
	case 4:
		n, err := strconv.Atoi(parts[3])
		if err != nil {
			return f, fmt.Errorf("malformed frame line in %q", s)
		}
		f.Loc = ir.Loc{File: parts[2], Line: n}
	default:
		return f, fmt.Errorf("malformed frame %q", s)
	}
	id, err := strconv.Atoi(parts[1])
	if err != nil {
		return f, fmt.Errorf("malformed frame id in %q", s)
	}
	f.Func = parts[0]
	f.InstrID = id
	return f, nil
}

// WritePMTest serializes the trace in the PMTest dialect (used by tests
// and by tools that want to exchange traces with PMTest-based pipelines).
func (t *Trace) WritePMTest(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "PMTest v1 %s\n", t.Program)
	for _, e := range t.Events {
		switch e.Kind {
		case KindStore:
			fmt.Fprintf(bw, "STORE 0x%x %d", e.Addr, e.Size)
		case KindNTStore:
			fmt.Fprintf(bw, "NTSTORE 0x%x %d", e.Addr, e.Size)
		case KindFlush:
			fmt.Fprintf(bw, "FLUSH %s 0x%x", e.FlushK, e.Addr)
		case KindFence:
			fmt.Fprintf(bw, "FENCE %s", e.FenceK)
		case KindCheckpoint:
			bw.WriteString("CHECK")
		case KindAlloc:
			fmt.Fprintf(bw, "REGISTER 0x%x %d", e.Addr, e.Size)
			if e.Sym != "" {
				fmt.Fprintf(bw, " @%s", e.Sym)
			}
		}
		if len(e.Stack) > 0 {
			bw.WriteString(" @ ")
			for i, f := range e.Stack {
				if i > 0 {
					bw.WriteString(" < ")
				}
				if f.Loc.IsZero() {
					fmt.Fprintf(bw, "%s:%d", f.Func, f.InstrID)
				} else {
					fmt.Fprintf(bw, "%s:%d:%s:%d", f.Func, f.InstrID, f.Loc.File, f.Loc.Line)
				}
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
