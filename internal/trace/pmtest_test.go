package trace

import (
	"math/rand"
	"strings"
	"testing"

	"hippocrates/internal/ir"
)

const pmtestSample = `PMTest v1 demo
REGISTER 0x100000000040 64 @pool
STORE 0x100000000040 8 @ update:3:a.pmc:12 < modify:1:a.pmc:20 < main:7
FLUSH clwb 0x100000000040 @ update:4:a.pmc:13
NTSTORE 0x100000000080 8 @ main:9
FENCE sfence @ main:10
CHECK @ main:11
`

func TestParsePMTest(t *testing.T) {
	tr, err := ParsePMTestString(pmtestSample)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Program != "demo" {
		t.Errorf("program = %q", tr.Program)
	}
	if len(tr.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(tr.Events))
	}
	wantKinds := []Kind{KindAlloc, KindStore, KindFlush, KindNTStore, KindFence, KindCheckpoint}
	for i, k := range wantKinds {
		if tr.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, tr.Events[i].Kind, k)
		}
		if tr.Events[i].Seq != i {
			t.Errorf("event %d seq = %d", i, tr.Events[i].Seq)
		}
	}
	if tr.Events[0].Sym != "pool" || tr.Events[0].Size != 64 {
		t.Errorf("register event = %+v", tr.Events[0])
	}
	st := tr.Events[1]
	if st.Addr != 0x100000000040 || st.Size != 8 {
		t.Errorf("store event = %+v", st)
	}
	if len(st.Stack) != 3 || st.Stack[1].Func != "modify" || st.Stack[1].InstrID != 1 {
		t.Errorf("store stack = %+v", st.Stack)
	}
	if st.Stack[0].Loc != (ir.Loc{File: "a.pmc", Line: 12}) {
		t.Errorf("store loc = %v", st.Stack[0].Loc)
	}
	if st.Stack[2].Loc != (ir.Loc{}) {
		t.Errorf("frame without location parsed loc = %v", st.Stack[2].Loc)
	}
	if tr.Events[2].FlushK != ir.CLWB || tr.Events[4].FenceK != ir.SFENCE {
		t.Error("kinds lost")
	}
}

func TestPMTestRoundTrip(t *testing.T) {
	tr, err := ParsePMTestString(pmtestSample)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WritePMTest(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePMTestString(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	var sb2 strings.Builder
	if err := back.WritePMTest(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Errorf("pmtest round-trip mismatch:\n%s\n----\n%s", sb.String(), sb2.String())
	}
}

func TestPMTestEquivalentToNative(t *testing.T) {
	// The same events expressed in both dialects must load identically.
	tr := sampleTrace()
	var native strings.Builder
	if err := tr.Write(&native); err != nil {
		t.Fatal(err)
	}
	var pmtest strings.Builder
	if err := tr.WritePMTest(&pmtest); err != nil {
		t.Fatal(err)
	}
	a, err := ParseString(native.String())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParsePMTestString(pmtest.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Kind != eb.Kind || ea.Addr != eb.Addr || ea.Size != eb.Size ||
			len(ea.Stack) != len(eb.Stack) {
			t.Errorf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestParsePMTestErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"no header", "STORE 0x10 8"},
		{"bad record", "PMTest v1 x\nEXPLODE"},
		{"bad addr", "PMTest v1 x\nSTORE zz 8"},
		{"bad size", "PMTest v1 x\nSTORE 0x10 huge"},
		{"bad flush", "PMTest v1 x\nFLUSH clzap 0x10"},
		{"bad fence", "PMTest v1 x\nFENCE nofence"},
		{"bad frame", "PMTest v1 x\nCHECK @ justfunc"},
		{"bad frame id", "PMTest v1 x\nCHECK @ f:x"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParsePMTestString(c.in); err == nil {
				t.Error("accepted malformed input")
			}
		})
	}
}

// TestParsersNeverPanic mutates valid traces in both dialects: parsers
// must error on garbage, never panic (trace files arrive from disk).
func TestParsersNeverPanic(t *testing.T) {
	tr := sampleTrace()
	var native, pmtest strings.Builder
	if err := tr.Write(&native); err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePMTest(&pmtest); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	mutate := func(s string) string {
		b := []byte(s)
		if len(b) == 0 {
			return s
		}
		switch rng.Intn(3) {
		case 0:
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		case 1:
			i := rng.Intn(len(b))
			b = append(b[:i], b[min(i+1+rng.Intn(8), len(b)):]...)
		default:
			i := rng.Intn(len(b))
			b = append(b[:i], append([]byte("@#%"), b[i:]...)...)
		}
		return string(b)
	}
	for i := 0; i < 2000; i++ {
		for _, base := range []string{native.String(), pmtest.String()} {
			src := base
			for k := 0; k <= rng.Intn(3); k++ {
				src = mutate(src)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("trace parser panicked: %v\n----\n%s", r, src)
					}
				}()
				_, _ = ParseString(src)
				_, _ = ParsePMTestString(src)
			}()
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
