//go:build race

package trace

// raceEnabled gates testing.AllocsPerRun guards: the race runtime
// changes allocation behaviour, so the counts only hold without it.
const raceEnabled = true
