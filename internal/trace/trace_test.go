package trace

import (
	"strings"
	"testing"

	"hippocrates/internal/ir"
)

func sampleTrace() *Trace {
	t := &Trace{Program: "sample"}
	t.Append(&Event{
		Kind: KindStore, Addr: 0x100000000000, Size: 8,
		Stack: []Frame{
			{Func: "update", InstrID: 3, Loc: ir.Loc{File: "a.pmc", Line: 12}},
			{Func: "modify", InstrID: 1, Loc: ir.Loc{File: "a.pmc", Line: 20}},
			{Func: "main", InstrID: 7},
		},
	})
	t.Append(&Event{Kind: KindFlush, FlushK: ir.CLWB, Addr: 0x100000000000,
		Stack: []Frame{{Func: "update", InstrID: 4, Loc: ir.Loc{File: "a.pmc", Line: 13}}}})
	t.Append(&Event{Kind: KindNTStore, Addr: 0x100000000040, Size: 8,
		Stack: []Frame{{Func: "main", InstrID: 9}}})
	t.Append(&Event{Kind: KindFence, FenceK: ir.SFENCE,
		Stack: []Frame{{Func: "main", InstrID: 10}}})
	t.Append(&Event{Kind: KindCheckpoint,
		Stack: []Frame{{Func: "main", InstrID: 11}}})
	return t
}

func TestAppendAssignsSeq(t *testing.T) {
	tr := sampleTrace()
	for i, e := range tr.Events {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	text := tr.String()
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if back.String() != text {
		t.Errorf("round-trip mismatch:\n%s\n----\n%s", text, back.String())
	}
	if back.Program != "sample" {
		t.Errorf("program = %q", back.Program)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(back.Events), len(tr.Events))
	}
	e0 := back.Events[0]
	if e0.Kind != KindStore || e0.Addr != 0x100000000000 || e0.Size != 8 {
		t.Errorf("event 0 = %+v", e0)
	}
	if len(e0.Stack) != 3 || e0.Stack[1].Func != "modify" || e0.Stack[1].InstrID != 1 {
		t.Errorf("event 0 stack = %+v", e0.Stack)
	}
	if e0.Stack[0].Loc != (ir.Loc{File: "a.pmc", Line: 12}) {
		t.Errorf("event 0 loc = %v", e0.Stack[0].Loc)
	}
	if back.Events[1].FlushK != ir.CLWB {
		t.Errorf("flush kind = %v", back.Events[1].FlushK)
	}
	if back.Events[3].FenceK != ir.SFENCE {
		t.Errorf("fence kind = %v", back.Events[3].FenceK)
	}
}

func TestStores(t *testing.T) {
	tr := sampleTrace()
	st := tr.Stores()
	if len(st) != 2 {
		t.Fatalf("stores = %d, want 2", len(st))
	}
	if st[0].Kind != KindStore || st[1].Kind != KindNTStore {
		t.Errorf("store kinds = %v, %v", st[0].Kind, st[1].Kind)
	}
}

func TestSite(t *testing.T) {
	tr := sampleTrace()
	if s := tr.Events[0].Site(); s.Func != "update" || s.InstrID != 3 {
		t.Errorf("site = %+v", s)
	}
	empty := &Event{}
	if s := empty.Site(); s.Func != "" {
		t.Errorf("empty site = %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no header", "#0 fence sfence"},
		{"bad seq", "pmtrace x\n#z store addr=0x0 size=8"},
		{"bad kind", "pmtrace x\n#0 explode"},
		{"bad flush kind", "pmtrace x\n#0 flush clzap addr=0x10"},
		{"bad fence kind", "pmtrace x\n#0 fence zfence"},
		{"bad frame", "pmtrace x\n#0 fence sfence | nofunc"},
		{"bad frame id", "pmtrace x\n#0 fence sfence | f@xy"},
		{"bad addr", "pmtrace x\n#0 store addr=0xzz size=8"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.in); err == nil {
				t.Error("ParseString accepted malformed input")
			}
		})
	}
}

func TestFrameStringForms(t *testing.T) {
	f := Frame{Func: "f", InstrID: 2}
	if f.String() != "f@2" {
		t.Errorf("frame = %q", f.String())
	}
	f.Loc = ir.Loc{File: "x.pmc", Line: 9}
	if f.String() != "f@2(x.pmc:9)" {
		t.Errorf("frame = %q", f.String())
	}
	got, err := parseFrame("f@2(x.pmc:9)")
	if err != nil || got != f {
		t.Errorf("parseFrame = %+v, %v", got, err)
	}
}

func TestWriteToWriter(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := tr.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "pmtrace sample\n") {
		t.Error("missing header")
	}
}

// TestKindCountsAllocFree guards the telemetry hot path: KindCounts is
// called once per interpreter run and must not allocate (it returns a
// dense array; it used to build a map per call).
func TestKindCountsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race runtime")
	}
	tr := sampleTrace()
	var sink [NumKinds]int
	allocs := testing.AllocsPerRun(100, func() {
		sink = tr.KindCounts()
	})
	if allocs != 0 {
		t.Fatalf("KindCounts allocates %.1f objects per call, want 0", allocs)
	}
	if sink[int(KindStore)] == 0 {
		t.Fatal("sample trace lost its store events")
	}
}
