// Package schedule explores thread interleavings of a concurrent PM
// program and runs the dynamic detector under each one.
//
// The interpreter takes scheduling decisions only at PM-visible
// boundaries (stores, flushes, fences, durability points, atomics,
// spawn/join — see internal/interp's scheduler), so an interleaving is
// fully described by the choice taken at each decision point. Explore
// performs systematic prefix-tree search over those choices: it runs
// the default round-robin schedule, reads back the decision log, and
// for every decision point branches into each alternative that was
// runnable but not chosen, replaying the choice prefix up to that point
// and letting round-robin finish the run. Branches discovered by a
// child run are explored the same way, but only at points at or beyond
// the child's own prefix — points before it were already branched by an
// ancestor — so no interleaving is visited twice.
//
// Persistence-aware partial-order reduction prunes the tree: an
// alternative is skipped when its pending operation provably commutes
// with the chosen one. Two operations commute when both are
// line-addressed (store, NT-store, weak flush, atomic) and touch
// different cache lines — the persistency tracker's state is
// per-line, so executing them in either order reaches the same
// machine, tracker, and trace-modulo-sequence state, and crash images
// are unaffected because the per-cache-line prefix crash model already
// enumerates every cross-line eviction order at each crash point.
// Everything else conservatively conflicts: fences and durability
// points are global barriers, ordered flushes (CLFLUSH) commit their
// line mid-interleaving, and spawn/join/start change the runnable set.
//
// The model assumes threads share data only through PM-visible
// operations, atomics, and join edges; volatile non-atomic races fall
// between decision points and are not interleaved (generated and
// corpus programs respect this).
package schedule

import (
	"fmt"
	"sort"
	"strings"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/pmem"
	"hippocrates/internal/trace"
)

// DefaultMaxSchedules bounds exploration when the caller doesn't.
const DefaultMaxSchedules = 64

// Options configures an exploration.
type Options struct {
	// MaxSchedules caps the number of interleavings executed (0 means
	// DefaultMaxSchedules). When the bound truncates a non-empty
	// frontier the Result says so rather than silently claiming full
	// coverage.
	MaxSchedules int
	// NoPOR disables partial-order reduction, making the search
	// bounded-exhaustive. The equivalence test uses this to pin POR's
	// soundness: both modes must produce the same verdict set.
	NoPOR bool
	// Interp is the per-run interpreter option template. Trace and
	// Schedule are overwritten for every run; everything else (step
	// limit, deadline, cost model) passes through.
	Interp interp.Options
	// Obs, when non-nil, receives schedule.explored / schedule.pruned /
	// schedule.truncated counters.
	Obs *obs.Span
}

// Run is one executed interleaving.
type Run struct {
	// Choices is the full decision log (not just the seed prefix);
	// replaying it as a schedule reproduces this run bit-for-bit.
	Choices []int
	// ID is interp.ScheduleID(Choices) — the replayable coordinate.
	ID string
	// Decisions is the machine's decision log for this run.
	Decisions []interp.Decision
	// Ret is the entry function's return value (zero if Err != nil).
	Ret uint64
	// Err is the runtime verdict: non-nil when this interleaving
	// faulted, deadlocked, or tripped an assertion.
	Err error
	// Trace holds the run's PM events.
	Trace *trace.Trace
	// Check is the detector result for Trace; nil when Err != nil (an
	// aborted run never reached its final durability point, so the
	// detector would report the abort, not the program).
	Check *pmcheck.Result
	// Threads is how many threads the run spawned (including main).
	Threads int
}

// Buggy reports whether this interleaving exhibited a problem: a
// runtime error or any detector report.
func (r *Run) Buggy() bool {
	return r.Err != nil || (r.Check != nil && !r.Check.Clean())
}

// Signature is an order-insensitive fingerprint of the run's verdict:
// return value (or error), plus the sorted set of distinct report
// classes and sites. Two interleavings with equal signatures found the
// same bugs, which is what the POR equivalence test compares.
func (r *Run) Signature() string {
	if r.Err != nil {
		return "err:" + firstLine(r.Err.Error())
	}
	parts := []string{fmt.Sprintf("ret:%d", r.Ret)}
	set := map[string]bool{}
	for _, rep := range r.Check.Reports {
		k := rep.Key()
		set[fmt.Sprintf("%s@%d|%s|xt=%v", k.Func, k.InstrID, rep.Class(), rep.CrossThread)] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(append(parts, keys...), ";")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Result is the outcome of an exploration.
type Result struct {
	// Runs holds every executed interleaving, in discovery order; the
	// first entry is always the default round-robin schedule.
	Runs []*Run
	// Explored == len(Runs).
	Explored int
	// Pruned counts alternatives skipped by partial-order reduction.
	Pruned int
	// Truncated is set when MaxSchedules cut off a non-empty frontier.
	Truncated bool
}

// AllClean reports whether every explored interleaving was bug-free.
func (res *Result) AllClean() bool { return res.FirstBuggy() == nil }

// FirstBuggy returns the first explored interleaving that exhibited a
// problem, or nil.
func (res *Result) FirstBuggy() *Run {
	for _, r := range res.Runs {
		if r.Buggy() {
			return r
		}
	}
	return nil
}

// VerdictSet returns the sorted distinct run signatures — the
// order-insensitive summary POR must preserve.
func (res *Result) VerdictSet() []string {
	set := map[string]bool{}
	for _, r := range res.Runs {
		set[r.Signature()] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Explore systematically runs mod's entry under distinct interleavings
// and checks each one. It returns an error only for structural
// failures (entry missing, machine construction); per-interleaving
// runtime errors are verdicts, recorded on the Run.
func Explore(mod *ir.Module, entry string, args []uint64, opts Options) (*Result, error) {
	max := opts.MaxSchedules
	if max <= 0 {
		max = DefaultMaxSchedules
	}
	res := &Result{}
	frontier := [][]int{nil}
	for len(frontier) > 0 && res.Explored < max {
		prefix := frontier[0]
		frontier = frontier[1:]
		run, err := runOne(mod, entry, args, prefix, &opts.Interp)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, run)
		res.Explored++
		// Branch only at or beyond this run's own prefix: earlier points
		// were branched by the ancestor that discovered them.
		for i := len(prefix); i < len(run.Decisions); i++ {
			d := run.Decisions[i]
			for alt := range d.Runnable {
				if alt == d.Chosen {
					continue
				}
				if !opts.NoPOR && commutes(d.Runnable[alt], d.Runnable[d.Chosen]) {
					res.Pruned++
					continue
				}
				np := make([]int, i+1)
				copy(np, run.Choices[:i])
				np[i] = alt
				frontier = append(frontier, np)
			}
		}
	}
	res.Truncated = len(frontier) > 0
	if sp := opts.Obs; sp != nil {
		sp.Add("schedule.explored", int64(res.Explored))
		sp.Add("schedule.pruned", int64(res.Pruned))
		if res.Truncated {
			sp.Add("schedule.truncated", 1)
		}
	}
	return res, nil
}

// runOne executes a single interleaving from a choice prefix.
func runOne(mod *ir.Module, entry string, args []uint64, prefix []int, tmpl *interp.Options) (*Run, error) {
	io := *tmpl
	tr := &trace.Trace{Program: mod.Name}
	io.Trace = tr
	io.Schedule = prefix
	m, err := interp.New(mod, io)
	if err != nil {
		return nil, err
	}
	ret, rerr := m.Run(entry, args...)
	ds := m.Decisions()
	choices := make([]int, len(ds))
	for i, d := range ds {
		choices[i] = d.Chosen
	}
	r := &Run{
		Choices:   choices,
		ID:        interp.ScheduleID(choices),
		Decisions: ds,
		Trace:     tr,
		Threads:   m.ThreadCount(),
	}
	if rerr != nil {
		r.Err = rerr
	} else {
		r.Ret = ret
		r.Check = pmcheck.Check(tr)
	}
	return r, nil
}

// commutes reports whether two pending operations provably reach the
// same state in either order: both must be line-addressed (store,
// NT-store, weak flush, atomic) and touch different cache lines.
func commutes(a, b interp.PendingOp) bool {
	return lineAddressed(a) && lineAddressed(b) &&
		pmem.LineOf(a.Addr) != pmem.LineOf(b.Addr)
}

func lineAddressed(p interp.PendingOp) bool {
	switch p.Kind {
	case interp.PendStore, interp.PendNTStore, interp.PendAtomic:
		return true
	case interp.PendFlush:
		// CLFLUSH commits its line immediately, changing the durable
		// image mid-interleaving — conservatively conflicts.
		return !p.Ordered
	}
	return false
}
