package schedule

import (
	"reflect"
	"testing"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
)

// maskedPublish is the minimal schedule-dependent unordered-publish
// program: the worker's store to shard->val carries no flush or fence,
// but main's own clwb+sfence of the shard line masks the bug whenever
// the worker's store lands before main's flush — which is exactly what
// the default round-robin interleaving does. Only an interleaving that
// runs main's flush first leaves the worker's store pending when main
// durably publishes the shard's address.
const maskedPublish = `
struct shard {
	int stats;
	int val;
	byte pad[48];
};

struct root {
	shard s;
	byte *head;
};

void worker() {
	root *r = (root*) pm_root(sizeof(root));
	r->s.val = 42; // BUG: never flushed or fenced by its own thread
}

int main() {
	root *r = (root*) pm_root(sizeof(root));
	int t = spawn(worker);
	r->s.stats = r->s.stats + 1;
	clwb((byte*) &r->s.stats);
	sfence();
	join(t);
	r->head = (byte*) &r->s;
	clwb((byte*) &r->head);
	sfence();
	pm_checkpoint();
	return r->s.val;
}
`

// disjointWriters has two workers persisting correctly to different
// cache lines: every interleaving is clean and every pair of their
// line-addressed operations commutes, so POR should collapse the tree.
const disjointWriters = `
struct cell {
	int v;
	byte pad[56];
};

struct pair {
	cell a;
	cell b;
};

void wa() {
	pair *p = (pair*) pm_root(sizeof(pair));
	p->a.v = 1;
	clwb((byte*) &p->a.v);
	sfence();
}

void wb() {
	pair *p = (pair*) pm_root(sizeof(pair));
	p->b.v = 2;
	clwb((byte*) &p->b.v);
	sfence();
}

int main() {
	pair *p = (pair*) pm_root(sizeof(pair));
	int ta = spawn(wa);
	int tb = spawn(wb);
	join(ta);
	join(tb);
	pm_checkpoint();
	return p->a.v + p->b.v;
}
`

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := lang.Compile("test.pmc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

func TestExploreFindsScheduleDependentBug(t *testing.T) {
	mod := compile(t, maskedPublish)
	res, err := Explore(mod, "main", nil, Options{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	rr := res.Runs[0]
	if rr.ID != "rr" && len(rr.Choices) == 0 {
		t.Fatalf("first run is not the default schedule: %q", rr.ID)
	}
	if rr.Buggy() {
		t.Fatalf("round-robin schedule should mask the bug, got reports:\n%s",
			rr.Check.Summary())
	}
	bad := res.FirstBuggy()
	if bad == nil {
		t.Fatalf("no explored schedule exposed the bug (%d explored, %d pruned)",
			res.Explored, res.Pruned)
	}
	if bad.Err != nil {
		t.Fatalf("buggy schedule %s errored instead of reporting: %v", bad.ID, bad.Err)
	}
	found := false
	for _, rep := range bad.Check.Reports {
		if rep.CrossThread {
			found = true
			if rep.Tid == rep.PubTid {
				t.Errorf("cross-thread report has same store/publish tid %d", rep.Tid)
			}
			if !rep.NeedFlush || !rep.NeedFence {
				t.Errorf("cross-thread report should need flush+fence: %+v", rep)
			}
		}
	}
	if !found {
		t.Errorf("schedule %s buggy but no cross-thread publish report:\n%s",
			bad.ID, bad.Check.Summary())
	}
}

func TestExploreReplayIsDeterministic(t *testing.T) {
	mod := compile(t, maskedPublish)
	res, err := Explore(mod, "main", nil, Options{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	bad := res.FirstBuggy()
	if bad == nil {
		t.Fatal("need a buggy schedule to replay")
	}
	// Replaying the full choice log must reproduce the run bit-for-bit:
	// same decisions, same trace bytes, same verdict.
	again, err := runOne(mod, "main", nil, bad.Choices, &interp.Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if again.ID != bad.ID {
		t.Fatalf("replay drifted: %s vs %s", again.ID, bad.ID)
	}
	if got, want := again.Trace.String(), bad.Trace.String(); got != want {
		t.Fatalf("replayed trace differs:\n--- original\n%s\n--- replay\n%s", want, got)
	}
	if !reflect.DeepEqual(again.Decisions, bad.Decisions) {
		t.Fatal("replayed decision log differs")
	}
}

func TestPORPreservesVerdictSet(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"masked-publish", maskedPublish},
		{"disjoint-writers", disjointWriters},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mod := compile(t, tc.src)
			full, err := Explore(mod, "main", nil, Options{MaxSchedules: 4096, NoPOR: true})
			if err != nil {
				t.Fatalf("exhaustive: %v", err)
			}
			if full.Truncated {
				t.Fatalf("exhaustive exploration truncated at %d schedules", full.Explored)
			}
			por, err := Explore(mod, "main", nil, Options{MaxSchedules: 4096})
			if err != nil {
				t.Fatalf("por: %v", err)
			}
			if por.Truncated {
				t.Fatalf("POR exploration truncated at %d schedules", por.Explored)
			}
			if por.Explored > full.Explored {
				t.Errorf("POR explored more than exhaustive: %d > %d", por.Explored, full.Explored)
			}
			if got, want := por.VerdictSet(), full.VerdictSet(); !reflect.DeepEqual(got, want) {
				t.Errorf("verdict sets diverge\nPOR:        %v\nexhaustive: %v", got, want)
			}
		})
	}
}

func TestPORPrunesDisjointWriters(t *testing.T) {
	mod := compile(t, disjointWriters)
	res, err := Explore(mod, "main", nil, Options{MaxSchedules: 4096})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if res.Pruned == 0 {
		t.Errorf("expected POR to prune commuting disjoint-line alternatives (explored %d)",
			res.Explored)
	}
	if !res.AllClean() {
		t.Errorf("disjoint writers should be clean under every interleaving")
	}
}

func TestMaxSchedulesTruncates(t *testing.T) {
	mod := compile(t, maskedPublish)
	res, err := Explore(mod, "main", nil, Options{MaxSchedules: 1, NoPOR: true})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if res.Explored != 1 {
		t.Fatalf("explored %d, want 1", res.Explored)
	}
	if !res.Truncated {
		t.Error("bound of 1 should leave a truncated frontier")
	}
}
