package lang

import (
	"strings"
)

// lexer turns source text into tokens.
type lexer struct {
	file string
	src  string
	pos  int
	line int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1}
}

// twoCharOps are the multi-character operators, longest-match-first.
var threeCharOps = []string{"<<=", ">>="}
var twoCharOps = []string{
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "++", "--",
}

func (lx *lexer) lex() ([]token, error) {
	var out []token
	for {
		lx.skipSpace()
		if lx.pos >= len(lx.src) {
			out = append(out, token{kind: tokEOF, line: lx.line})
			return out, nil
		}
		c := lx.src[lx.pos]
		switch {
		case isIdentStart(c):
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
				lx.pos++
			}
			out = append(out, token{kind: tokIdent, text: lx.src[start:lx.pos], line: lx.line})
		case c >= '0' && c <= '9':
			tk, err := lx.lexNumber()
			if err != nil {
				return nil, err
			}
			out = append(out, tk)
		case c == '\'':
			tk, err := lx.lexChar()
			if err != nil {
				return nil, err
			}
			out = append(out, tk)
		case c == '"':
			tk, err := lx.lexString()
			if err != nil {
				return nil, err
			}
			out = append(out, tk)
		default:
			op := lx.lexOp()
			if op == "" {
				return nil, errf(lx.file, lx.line, "unexpected character %q", rune(c))
			}
			out = append(out, token{kind: tokPunct, text: op, line: lx.line})
		}
	}
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			lx.pos += 2
		default:
			return
		}
	}
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	base := int64(10)
	if strings.HasPrefix(lx.src[lx.pos:], "0x") || strings.HasPrefix(lx.src[lx.pos:], "0X") {
		base = 16
		lx.pos += 2
	}
	v := int64(0)
	digits := 0
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			goto done
		}
		if d >= base {
			return token{}, errf(lx.file, lx.line, "bad digit in number %q", lx.src[start:lx.pos+1])
		}
		v = v*base + d
		digits++
		lx.pos++
	}
done:
	if digits == 0 {
		return token{}, errf(lx.file, lx.line, "malformed number")
	}
	return token{kind: tokInt, val: v, line: lx.line}, nil
}

func (lx *lexer) lexChar() (token, error) {
	lx.pos++ // opening quote
	if lx.pos >= len(lx.src) {
		return token{}, errf(lx.file, lx.line, "unterminated character literal")
	}
	var v int64
	c := lx.src[lx.pos]
	if c == '\\' {
		lx.pos++
		if lx.pos >= len(lx.src) {
			return token{}, errf(lx.file, lx.line, "unterminated escape")
		}
		e, err := unescape(lx.src[lx.pos])
		if err != nil {
			return token{}, errf(lx.file, lx.line, "%s", err)
		}
		v = int64(e)
	} else {
		v = int64(c)
	}
	lx.pos++
	if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
		return token{}, errf(lx.file, lx.line, "unterminated character literal")
	}
	lx.pos++
	return token{kind: tokChar, val: v, line: lx.line}, nil
}

func (lx *lexer) lexString() (token, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case '"':
			lx.pos++
			return token{kind: tokString, text: sb.String(), line: lx.line}, nil
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return token{}, errf(lx.file, lx.line, "unterminated escape")
			}
			e, err := unescape(lx.src[lx.pos])
			if err != nil {
				return token{}, errf(lx.file, lx.line, "%s", err)
			}
			sb.WriteByte(e)
			lx.pos++
		case '\n':
			return token{}, errf(lx.file, lx.line, "newline in string literal")
		default:
			sb.WriteByte(c)
			lx.pos++
		}
	}
	return token{}, errf(lx.file, lx.line, "unterminated string literal")
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, errf("", 0, "unknown escape \\%c", rune(c))
}

func (lx *lexer) lexOp() string {
	rest := lx.src[lx.pos:]
	for _, op := range threeCharOps {
		if strings.HasPrefix(rest, op) {
			lx.pos += 3
			return op
		}
	}
	for _, op := range twoCharOps {
		if strings.HasPrefix(rest, op) {
			lx.pos += 2
			return op
		}
	}
	switch rest[0] {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
		'(', ')', '{', '}', '[', ']', ';', ',', '.', ':':
		lx.pos++
		return rest[:1]
	}
	return ""
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
