package lang

import (
	"fmt"

	"hippocrates/internal/ir"
)

// TKind enumerates the semantic type kinds of pmc.
type TKind int

// The semantic type kinds.
const (
	TInt TKind = iota
	TByte
	TBool
	TVoid
	TPtr
	TArray
	TStruct
)

// Type is a resolved pmc type.
type Type struct {
	Kind   TKind
	Elem   *Type          // TPtr / TArray
	Len    int64          // TArray
	Struct *ir.StructType // TStruct
}

// The basic type singletons.
var (
	tyInt  = &Type{Kind: TInt}
	tyByte = &Type{Kind: TByte}
	tyBool = &Type{Kind: TBool}
	tyVoid = &Type{Kind: TVoid}
)

func ptrTo(e *Type) *Type { return &Type{Kind: TPtr, Elem: e} }
func arrayOf(e *Type, n int64) *Type {
	return &Type{Kind: TArray, Elem: e, Len: n}
}

func (t *Type) String() string {
	switch t.Kind {
	case TInt:
		return "int"
	case TByte:
		return "byte"
	case TBool:
		return "bool"
	case TVoid:
		return "void"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TStruct:
		return t.Struct.Name
	}
	return fmt.Sprintf("type(%d)", int(t.Kind))
}

// IR maps the pmc type to its IR representation.
func (t *Type) IR() ir.Type {
	switch t.Kind {
	case TInt:
		return ir.I64
	case TByte:
		return ir.I8
	case TBool:
		return ir.I1
	case TVoid:
		return ir.Void
	case TPtr:
		return ir.Ptr
	case TArray:
		return ir.Array(t.Elem.IR(), t.Len)
	case TStruct:
		return t.Struct
	}
	panic("lang: bad type kind")
}

// Size returns the type's size in bytes.
func (t *Type) Size() int64 { return t.IR().Size() }

// IsInteger reports int or byte.
func (t *Type) IsInteger() bool { return t.Kind == TInt || t.Kind == TByte }

// IsScalar reports a register-representable type.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case TInt, TByte, TBool, TPtr:
		return true
	}
	return false
}

// isBytePtr reports byte* (pmc's "void pointer": it converts implicitly to
// and from any other pointer type).
func (t *Type) isBytePtr() bool {
	return t.Kind == TPtr && t.Elem.Kind == TByte
}

// equal reports structural type equality (structs by identity of the
// interned ir.StructType).
func (t *Type) equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPtr:
		return t.Elem.equal(o.Elem)
	case TArray:
		return t.Len == o.Len && t.Elem.equal(o.Elem)
	case TStruct:
		return t.Struct == o.Struct
	}
	return true
}

// assignableTo reports whether a value of type t can be assigned (or
// passed, or returned) where type want is expected, possibly with an
// implicit conversion: int<->byte, any-pointer <-> byte*, null to any
// pointer (handled by the caller via isNull).
func (t *Type) assignableTo(want *Type) bool {
	if t.equal(want) {
		return true
	}
	if t.IsInteger() && want.IsInteger() {
		return true
	}
	if t.Kind == TPtr && want.Kind == TPtr && (t.isBytePtr() || want.isBytePtr()) {
		return true
	}
	return false
}
