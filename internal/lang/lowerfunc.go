package lang

import (
	"fmt"

	"hippocrates/internal/ir"
)

// lowerer compiles one function body.
type lowerer struct {
	c      *compiler
	b      *ir.Builder
	fi     *funcInfo
	scopes []map[string]*local
	breaks []*ir.Block
	conts  []*ir.Block
}

type local struct {
	addr ir.Value // the alloca
	ty   *Type
}

func (c *compiler) lowerFunc(fd *FuncDecl) error {
	fi := c.funcs[fd.Name]
	lo := &lowerer{c: c, fi: fi, b: ir.NewBuilder(fi.fn)}
	lo.pushScope()
	lo.b.SetLoc(ir.Loc{File: c.file, Line: fd.Line})
	// Parameters are mutable in pmc (as in C): each gets a slot.
	for i, p := range fi.fn.Params {
		slot := lo.b.Alloca(p.Ty)
		lo.b.Store(p.Ty, p, slot)
		lo.scopes[0][p.Name] = &local{addr: slot, ty: fi.params[i]}
	}
	if err := lo.stmt(fd.Body); err != nil {
		return err
	}
	lo.finalize()
	fi.fn.Renumber()
	return nil
}

// finalize terminates any unterminated or empty blocks with a default
// return (the zero value for non-void functions — unreachable in
// well-formed programs, but it keeps the verifier strict elsewhere).
func (lo *lowerer) finalize() {
	for _, blk := range lo.fi.fn.Blocks {
		if blk.Terminator() != nil {
			continue
		}
		lo.b.SetBlock(blk)
		if lo.fi.ret.Kind == TVoid {
			lo.b.Ret(nil)
		} else {
			lo.b.Ret(&ir.Const{Ty: lo.fi.ret.IR(), Val: 0})
		}
	}
}

func (lo *lowerer) pushScope() { lo.scopes = append(lo.scopes, map[string]*local{}) }
func (lo *lowerer) popScope()  { lo.scopes = lo.scopes[:len(lo.scopes)-1] }

func (lo *lowerer) lookup(name string) *local {
	for i := len(lo.scopes) - 1; i >= 0; i-- {
		if l, ok := lo.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (lo *lowerer) errf(line int, format string, args ...any) error {
	return errf(lo.c.file, line, format, args...)
}

// emitAlloca places an alloca at the head of the entry block so a
// declaration inside a loop does not grow the frame per iteration.
func (lo *lowerer) emitAlloca(layout ir.Type, line int) *ir.Instr {
	in := &ir.Instr{Op: ir.OpAlloca, Ty: ir.Ptr, AllocTy: layout, Loc: ir.Loc{File: lo.c.file, Line: line}}
	in.Name = fmt.Sprintf("slot%d", lo.fi.fn.NumInstrs())
	entry := lo.fi.fn.Entry()
	if len(entry.Instrs) == 0 {
		entry.Append(in)
	} else {
		entry.InsertBefore(entry.Instrs[0], in)
	}
	return in
}

// ---- statements ----

func (lo *lowerer) stmt(s Stmt) error {
	lo.b.SetLoc(ir.Loc{File: lo.c.file, Line: s.stmtLine()})
	if lo.b.Terminated() {
		// Code after break/continue/return: compile it into an
		// unreachable block so the block structure stays well-formed.
		lo.b.SetBlock(lo.b.NewBlock("dead"))
	}
	switch x := s.(type) {
	case *BlockStmt:
		lo.pushScope()
		for _, inner := range x.Stmts {
			if err := lo.stmt(inner); err != nil {
				return err
			}
		}
		lo.popScope()
		return nil
	case *DeclStmt:
		return lo.declStmt(x)
	case *AssignStmt:
		return lo.assignStmt(x)
	case *ExprStmt:
		_, _, err := lo.valueOrVoid(x.X)
		return err
	case *IfStmt:
		return lo.ifStmt(x)
	case *WhileStmt:
		return lo.whileStmt(x)
	case *ForStmt:
		return lo.forStmt(x)
	case *SwitchStmt:
		return lo.switchStmt(x)
	case *ReturnStmt:
		return lo.returnStmt(x)
	case *BreakStmt:
		if len(lo.breaks) == 0 {
			return lo.errf(x.Line, "break outside a loop")
		}
		lo.b.Jmp(lo.breaks[len(lo.breaks)-1])
		return nil
	case *ContinueStmt:
		if len(lo.conts) == 0 {
			return lo.errf(x.Line, "continue outside a loop")
		}
		lo.b.Jmp(lo.conts[len(lo.conts)-1])
		return nil
	}
	return lo.errf(s.stmtLine(), "unhandled statement %T", s)
}

func (lo *lowerer) declStmt(x *DeclStmt) error {
	if lo.scopes[len(lo.scopes)-1][x.Name] != nil {
		return lo.errf(x.Line, "duplicate variable %q in this scope", x.Name)
	}
	ty, err := lo.c.resolveType(x.Type)
	if err != nil {
		return err
	}
	if ty.Kind == TVoid {
		return lo.errf(x.Line, "variable %q has void type", x.Name)
	}
	slot := lo.emitAlloca(ty.IR(), x.Line)
	lo.scopes[len(lo.scopes)-1][x.Name] = &local{addr: slot, ty: ty}
	if x.Init != nil {
		if !ty.IsScalar() {
			return lo.errf(x.Line, "cannot initialize aggregate %q inline (use memset/memcpy)", x.Name)
		}
		v, vt, err := lo.value(x.Init)
		if err != nil {
			return err
		}
		cv, err := lo.convert(v, vt, ty, x.Line)
		if err != nil {
			return err
		}
		lo.b.Store(ty.IR(), cv, slot)
	}
	return nil
}

func (lo *lowerer) assignStmt(x *AssignStmt) error {
	addr, lty, err := lo.lvalue(x.LHS)
	if err != nil {
		return err
	}
	if !lty.IsScalar() {
		return lo.errf(x.Line, "cannot assign aggregate %s (use memcpy)", lty)
	}
	rhs, rty, err := lo.value(x.RHS)
	if err != nil {
		return err
	}
	if x.Op != "" {
		cur := lo.b.Load(lty.IR(), addr)
		nv, nty, err := lo.binaryValues(x.Op, cur, lty, rhs, rty, x.Line)
		if err != nil {
			return err
		}
		rhs, rty = nv, nty
	}
	cv, err := lo.convert(rhs, rty, lty, x.Line)
	if err != nil {
		return err
	}
	lo.b.Store(lty.IR(), cv, addr)
	return nil
}

func (lo *lowerer) ifStmt(x *IfStmt) error {
	cond, err := lo.truthy(x.Cond)
	if err != nil {
		return err
	}
	then := lo.b.NewBlock("then")
	exit := lo.b.NewBlock("endif")
	els := exit
	if x.Else != nil {
		els = lo.b.NewBlock("else")
	}
	lo.b.Br(cond, then, els)
	lo.b.SetBlock(then)
	if err := lo.stmt(x.Then); err != nil {
		return err
	}
	if !lo.b.Terminated() {
		lo.b.Jmp(exit)
	}
	if x.Else != nil {
		lo.b.SetBlock(els)
		if err := lo.stmt(x.Else); err != nil {
			return err
		}
		if !lo.b.Terminated() {
			lo.b.Jmp(exit)
		}
	}
	lo.b.SetBlock(exit)
	return nil
}

func (lo *lowerer) whileStmt(x *WhileStmt) error {
	cond := lo.b.NewBlock("while.cond")
	body := lo.b.NewBlock("while.body")
	exit := lo.b.NewBlock("while.end")
	lo.b.Jmp(cond)
	lo.b.SetBlock(cond)
	cv, err := lo.truthy(x.Cond)
	if err != nil {
		return err
	}
	lo.b.Br(cv, body, exit)
	lo.b.SetBlock(body)
	lo.breaks = append(lo.breaks, exit)
	lo.conts = append(lo.conts, cond)
	if err := lo.stmt(x.Body); err != nil {
		return err
	}
	lo.breaks = lo.breaks[:len(lo.breaks)-1]
	lo.conts = lo.conts[:len(lo.conts)-1]
	if !lo.b.Terminated() {
		lo.b.Jmp(cond)
	}
	lo.b.SetBlock(exit)
	return nil
}

func (lo *lowerer) forStmt(x *ForStmt) error {
	lo.pushScope()
	defer lo.popScope()
	if x.Init != nil {
		if err := lo.stmt(x.Init); err != nil {
			return err
		}
	}
	cond := lo.b.NewBlock("for.cond")
	body := lo.b.NewBlock("for.body")
	post := lo.b.NewBlock("for.post")
	exit := lo.b.NewBlock("for.end")
	lo.b.Jmp(cond)
	lo.b.SetBlock(cond)
	if x.Cond != nil {
		cv, err := lo.truthy(x.Cond)
		if err != nil {
			return err
		}
		lo.b.Br(cv, body, exit)
	} else {
		lo.b.Jmp(body)
	}
	lo.b.SetBlock(body)
	lo.breaks = append(lo.breaks, exit)
	lo.conts = append(lo.conts, post)
	if err := lo.stmt(x.Body); err != nil {
		return err
	}
	lo.breaks = lo.breaks[:len(lo.breaks)-1]
	lo.conts = lo.conts[:len(lo.conts)-1]
	if !lo.b.Terminated() {
		lo.b.Jmp(post)
	}
	lo.b.SetBlock(post)
	if x.Post != nil {
		if err := lo.stmt(x.Post); err != nil {
			return err
		}
	}
	if !lo.b.Terminated() {
		lo.b.Jmp(cond)
	}
	lo.b.SetBlock(exit)
	return nil
}

// switchStmt lowers a switch into a comparison ladder. pmc switches do
// not fall through; break exits the switch (as in C).
func (lo *lowerer) switchStmt(x *SwitchStmt) error {
	v, vt, err := lo.value(x.X)
	if err != nil {
		return err
	}
	if !vt.IsInteger() {
		return lo.errf(x.Line, "switch requires an integer, not %s", vt)
	}
	v64, _ := lo.promote(v, vt)
	exit := lo.b.NewBlock("switch.end")
	lo.breaks = append(lo.breaks, exit)
	defer func() { lo.breaks = lo.breaks[:len(lo.breaks)-1] }()

	lowerBody := func(body []Stmt, line int) error {
		lo.pushScope()
		defer lo.popScope()
		for _, s := range body {
			if err := lo.stmt(s); err != nil {
				return err
			}
		}
		if !lo.b.Terminated() {
			lo.b.Jmp(exit)
		}
		return nil
	}

	for _, c := range x.Cases {
		body := lo.b.NewBlock("case.body")
		next := lo.b.NewBlock("case.next")
		// Match any of the labels.
		for i, lab := range c.Vals {
			lv, lt, err := lo.value(lab)
			if err != nil {
				return err
			}
			if !lt.IsInteger() {
				return lo.errf(c.Line, "case label must be an integer, not %s", lt)
			}
			lv64, _ := lo.promote(lv, lt)
			eq := lo.b.Cmp(ir.OpEq, v64, lv64)
			if i == len(c.Vals)-1 {
				lo.b.Br(eq, body, next)
			} else {
				more := lo.b.NewBlock("case.or")
				lo.b.Br(eq, body, more)
				lo.b.SetBlock(more)
			}
		}
		lo.b.SetBlock(body)
		if err := lowerBody(c.Body, c.Line); err != nil {
			return err
		}
		lo.b.SetBlock(next)
	}
	if err := lowerBody(x.Default, x.Line); err != nil {
		return err
	}
	lo.b.SetBlock(exit)
	return nil
}

func (lo *lowerer) returnStmt(x *ReturnStmt) error {
	if lo.fi.ret.Kind == TVoid {
		if x.X != nil {
			return lo.errf(x.Line, "void function returns a value")
		}
		lo.b.Ret(nil)
		return nil
	}
	if x.X == nil {
		return lo.errf(x.Line, "missing return value (function returns %s)", lo.fi.ret)
	}
	v, vt, err := lo.value(x.X)
	if err != nil {
		return err
	}
	cv, err := lo.convert(v, vt, lo.fi.ret, x.Line)
	if err != nil {
		return err
	}
	lo.b.Ret(cv)
	return nil
}
