package lang

import (
	"hippocrates/internal/ir"
)

// flushIntrinsics maps intrinsic names to flush kinds.
var flushIntrinsics = map[string]ir.FlushKind{
	"clwb":       ir.CLWB,
	"clflushopt": ir.CLFLUSHOPT,
	"clflush":    ir.CLFLUSH,
}

// fenceIntrinsics maps intrinsic names to fence kinds.
var fenceIntrinsics = map[string]ir.FenceKind{
	"sfence": ir.SFENCE,
	"mfence": ir.MFENCE,
}

// valueOrVoid evaluates an expression that may be a void call.
func (lo *lowerer) valueOrVoid(e Expr) (ir.Value, *Type, error) {
	if call, ok := e.(*CallExpr); ok {
		return lo.call(call, true)
	}
	return lo.value(e)
}

// value evaluates an expression to a scalar value.
func (lo *lowerer) value(e Expr) (ir.Value, *Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return ir.ConstInt(x.Val), tyInt, nil
	case *BoolLit:
		return ir.ConstBool(x.Val), tyBool, nil
	case *NullLit:
		return ir.Null(), ptrTo(tyVoid), nil
	case *StrLit:
		return lo.c.internString(x.Val), ptrTo(tyByte), nil
	case *SizeOfExpr:
		ty, err := lo.c.resolveType(x.Of)
		if err != nil {
			return nil, nil, err
		}
		return ir.ConstInt(ty.Size()), tyInt, nil
	case *Ident:
		// Locals and globals shadow module constants.
		if lo.lookup(x.Name) == nil {
			if _, isGlobal := lo.c.globals[x.Name]; !isGlobal {
				if v, ok := lo.c.consts[x.Name]; ok {
					return ir.ConstInt(v), tyInt, nil
				}
			}
		}
		addr, ty, err := lo.lvalue(x)
		if err != nil {
			return nil, nil, err
		}
		return lo.loadOrDecay(addr, ty, x.Line)
	case *UnaryExpr:
		return lo.unary(x)
	case *BinaryExpr:
		return lo.binary(x)
	case *CallExpr:
		v, vt, err := lo.call(x, false)
		if err == nil && vt.Kind == TVoid {
			return nil, nil, lo.errf(x.Line, "void call %q used as a value", x.Name)
		}
		return v, vt, err
	case *IndexExpr, *MemberExpr:
		addr, ty, err := lo.lvalue(e)
		if err != nil {
			return nil, nil, err
		}
		return lo.loadOrDecay(addr, ty, e.exprLine())
	case *CastExpr:
		return lo.cast(x)
	}
	return nil, nil, lo.errf(e.exprLine(), "unhandled expression %T", e)
}

// loadOrDecay loads a scalar lvalue, or decays an array to a pointer to
// its first element.
func (lo *lowerer) loadOrDecay(addr ir.Value, ty *Type, line int) (ir.Value, *Type, error) {
	switch {
	case ty.IsScalar():
		return lo.b.Load(ty.IR(), addr), ty, nil
	case ty.Kind == TArray:
		return addr, ptrTo(ty.Elem), nil
	default:
		return nil, nil, lo.errf(line, "value of aggregate type %s is not usable directly", ty)
	}
}

// lvalue evaluates an expression to an address.
func (lo *lowerer) lvalue(e Expr) (ir.Value, *Type, error) {
	switch x := e.(type) {
	case *Ident:
		if l := lo.lookup(x.Name); l != nil {
			return l.addr, l.ty, nil
		}
		if g, ok := lo.c.globals[x.Name]; ok {
			return g.g, g.ty, nil
		}
		if _, ok := lo.c.consts[x.Name]; ok {
			return nil, nil, lo.errf(x.Line, "constant %q is not assignable", x.Name)
		}
		return nil, nil, lo.errf(x.Line, "undefined variable %q", x.Name)
	case *UnaryExpr:
		if x.Op != "*" {
			return nil, nil, lo.errf(x.Line, "expression is not assignable")
		}
		v, vt, err := lo.value(x.X)
		if err != nil {
			return nil, nil, err
		}
		if vt.Kind != TPtr || vt.Elem.Kind == TVoid {
			return nil, nil, lo.errf(x.Line, "cannot dereference %s", vt)
		}
		return v, vt.Elem, nil
	case *IndexExpr:
		base, ety, err := lo.indexBase(x)
		if err != nil {
			return nil, nil, err
		}
		iv, ity, err := lo.value(x.I)
		if err != nil {
			return nil, nil, err
		}
		if !ity.IsInteger() {
			return nil, nil, lo.errf(x.Line, "index must be an integer, not %s", ity)
		}
		idx, err := lo.convert(iv, ity, tyInt, x.Line)
		if err != nil {
			return nil, nil, err
		}
		return lo.b.PtrAdd(base, idx, ety.Size(), 0), ety, nil
	case *MemberExpr:
		var base ir.Value
		var sty *Type
		if x.Arrow {
			v, vt, err := lo.value(x.X)
			if err != nil {
				return nil, nil, err
			}
			if vt.Kind != TPtr || vt.Elem.Kind != TStruct {
				return nil, nil, lo.errf(x.Line, "-> on non-struct-pointer %s", vt)
			}
			base, sty = v, vt.Elem
		} else {
			addr, at, err := lo.lvalue(x.X)
			if err != nil {
				return nil, nil, err
			}
			if at.Kind != TStruct {
				return nil, nil, lo.errf(x.Line, ". on non-struct %s", at)
			}
			base, sty = addr, at
		}
		f := sty.Struct.FieldByName(x.Name)
		if f == nil {
			return nil, nil, lo.errf(x.Line, "struct %s has no field %q", sty.Struct.Name, x.Name)
		}
		fieldIdx := 0
		for i := range sty.Struct.Fields {
			if sty.Struct.Fields[i].Name == x.Name {
				fieldIdx = i
			}
		}
		fty := lo.c.fieldTypes[sty.Struct.Name][fieldIdx]
		return lo.b.PtrAdd(base, ir.ConstInt(0), 0, f.Offset), fty, nil
	}
	return nil, nil, lo.errf(e.exprLine(), "expression is not assignable")
}

// indexBase resolves the base of a[i]: an array lvalue (whose address is
// the element base) or a pointer value.
func (lo *lowerer) indexBase(x *IndexExpr) (ir.Value, *Type, error) {
	// Try the array-lvalue shape first for direct names/members.
	switch x.X.(type) {
	case *Ident, *MemberExpr, *IndexExpr:
		if addr, ty, err := lo.lvalue(x.X); err == nil {
			switch ty.Kind {
			case TArray:
				return addr, ty.Elem, nil
			case TPtr:
				if ty.Elem.Kind == TVoid {
					return nil, nil, lo.errf(x.Line, "cannot index a null/void pointer")
				}
				return lo.b.Load(ir.Ptr, addr), ty.Elem, nil
			}
			return nil, nil, lo.errf(x.Line, "cannot index %s", ty)
		}
	}
	v, vt, err := lo.value(x.X)
	if err != nil {
		return nil, nil, err
	}
	if vt.Kind != TPtr || vt.Elem.Kind == TVoid {
		return nil, nil, lo.errf(x.Line, "cannot index %s", vt)
	}
	return v, vt.Elem, nil
}

func (lo *lowerer) unary(x *UnaryExpr) (ir.Value, *Type, error) {
	switch x.Op {
	case "&":
		addr, ty, err := lo.lvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		if ty.Kind == TArray {
			return addr, ptrTo(ty.Elem), nil
		}
		return addr, ptrTo(ty), nil
	case "*":
		addr, ty, err := lo.lvalue(x)
		if err != nil {
			return nil, nil, err
		}
		return lo.loadOrDecay(addr, ty, x.Line)
	}
	v, vt, err := lo.value(x.X)
	if err != nil {
		return nil, nil, err
	}
	switch x.Op {
	case "-":
		if !vt.IsInteger() {
			return nil, nil, lo.errf(x.Line, "unary - on %s", vt)
		}
		return lo.b.Bin(ir.OpSub, vt.IR(), &ir.Const{Ty: vt.IR(), Val: 0}, v), vt, nil
	case "~":
		if !vt.IsInteger() {
			return nil, nil, lo.errf(x.Line, "unary ~ on %s", vt)
		}
		return lo.b.Bin(ir.OpXor, vt.IR(), v, &ir.Const{Ty: vt.IR(), Val: -1}), vt, nil
	case "!":
		b, err := lo.truthyValue(v, vt, x.Line)
		if err != nil {
			return nil, nil, err
		}
		return lo.b.Bin(ir.OpXor, ir.I1, b, ir.ConstBool(true)), tyBool, nil
	}
	return nil, nil, lo.errf(x.Line, "unhandled unary operator %q", x.Op)
}

func (lo *lowerer) binary(x *BinaryExpr) (ir.Value, *Type, error) {
	if x.Op == "&&" || x.Op == "||" {
		return lo.shortCircuit(x)
	}
	xv, xt, err := lo.value(x.X)
	if err != nil {
		return nil, nil, err
	}
	yv, yt, err := lo.value(x.Y)
	if err != nil {
		return nil, nil, err
	}
	return lo.binaryValues(x.Op, xv, xt, yv, yt, x.Line)
}

var cmpOps = map[string]ir.Op{
	"==": ir.OpEq, "!=": ir.OpNe, "<": ir.OpLt, "<=": ir.OpLe, ">": ir.OpGt, ">=": ir.OpGe,
}

var intOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpSDiv, "%": ir.OpSRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpAShr,
}

func (lo *lowerer) binaryValues(op string, xv ir.Value, xt *Type, yv ir.Value, yt *Type, line int) (ir.Value, *Type, error) {
	if irOp, ok := cmpOps[op]; ok {
		// Comparisons: integers (promoted), pointers, or bools.
		switch {
		case xt.IsInteger() && yt.IsInteger():
			xv64, _ := lo.promote(xv, xt)
			yv64, _ := lo.promote(yv, yt)
			return lo.b.Cmp(irOp, xv64, yv64), tyBool, nil
		case xt.Kind == TPtr && yt.Kind == TPtr:
			return lo.b.Cmp(irOp, xv, yv), tyBool, nil
		case xt.Kind == TBool && yt.Kind == TBool && (op == "==" || op == "!="):
			return lo.b.Cmp(irOp, xv, yv), tyBool, nil
		default:
			return nil, nil, lo.errf(line, "cannot compare %s and %s", xt, yt)
		}
	}
	irOp, ok := intOps[op]
	if !ok {
		return nil, nil, lo.errf(line, "unhandled operator %q", op)
	}
	// Pointer arithmetic.
	if xt.Kind == TPtr || yt.Kind == TPtr {
		switch {
		case op == "+" && xt.Kind == TPtr && yt.IsInteger():
			return lo.ptrAdd(xv, xt, yv, yt, 1, line)
		case op == "+" && yt.Kind == TPtr && xt.IsInteger():
			return lo.ptrAdd(yv, yt, xv, xt, 1, line)
		case op == "-" && xt.Kind == TPtr && yt.IsInteger():
			return lo.ptrAdd(xv, xt, yv, yt, -1, line)
		case op == "-" && xt.Kind == TPtr && yt.Kind == TPtr:
			if !xt.Elem.equal(yt.Elem) {
				return nil, nil, lo.errf(line, "pointer difference between %s and %s", xt, yt)
			}
			xi := lo.b.Cast(ir.OpPtrToInt, ir.I64, xv)
			yi := lo.b.Cast(ir.OpPtrToInt, ir.I64, yv)
			diff := lo.b.Bin(ir.OpSub, ir.I64, xi, yi)
			size := xt.Elem.Size()
			if size == 0 {
				return nil, nil, lo.errf(line, "pointer difference on void pointers")
			}
			if size == 1 {
				return diff, tyInt, nil
			}
			return lo.b.Bin(ir.OpSDiv, ir.I64, diff, ir.ConstInt(size)), tyInt, nil
		default:
			return nil, nil, lo.errf(line, "invalid pointer arithmetic %s %s %s", xt, op, yt)
		}
	}
	if !xt.IsInteger() || !yt.IsInteger() {
		return nil, nil, lo.errf(line, "operator %q requires integers, not %s and %s", op, xt, yt)
	}
	// Usual promotions: byte op byte stays byte; anything with int is int.
	if xt.Kind == TByte && yt.Kind == TByte {
		return lo.b.Bin(irOp, ir.I8, xv, yv), tyByte, nil
	}
	xv64, _ := lo.promote(xv, xt)
	yv64, _ := lo.promote(yv, yt)
	return lo.b.Bin(irOp, ir.I64, xv64, yv64), tyInt, nil
}

// ptrAdd emits p + sign*idx scaled by the element size.
func (lo *lowerer) ptrAdd(p ir.Value, pt *Type, idx ir.Value, it *Type, sign int64, line int) (ir.Value, *Type, error) {
	if pt.Elem.Kind == TVoid {
		return nil, nil, lo.errf(line, "arithmetic on void pointer")
	}
	idx64, _ := lo.promote(idx, it)
	return lo.b.PtrAdd(p, idx64, sign*pt.Elem.Size(), 0), pt, nil
}

// promote widens byte to int; ints pass through.
func (lo *lowerer) promote(v ir.Value, t *Type) (ir.Value, *Type) {
	if t.Kind == TByte {
		if c, ok := v.(*ir.Const); ok {
			return ir.ConstInt(c.Val & 0xff), tyInt
		}
		return lo.b.Cast(ir.OpZExt, ir.I64, v), tyInt
	}
	return v, t
}

// shortCircuit lowers && and || with a result slot (no phi nodes in the IR).
func (lo *lowerer) shortCircuit(x *BinaryExpr) (ir.Value, *Type, error) {
	slot := lo.emitAlloca(ir.I1, x.Line)
	xv, err := lo.truthy(x.X)
	if err != nil {
		return nil, nil, err
	}
	lo.b.Store(ir.I1, xv, slot)
	evalY := lo.b.NewBlock("sc.rhs")
	done := lo.b.NewBlock("sc.done")
	if x.Op == "&&" {
		lo.b.Br(xv, evalY, done)
	} else {
		lo.b.Br(xv, done, evalY)
	}
	lo.b.SetBlock(evalY)
	yv, err := lo.truthy(x.Y)
	if err != nil {
		return nil, nil, err
	}
	lo.b.Store(ir.I1, yv, slot)
	lo.b.Jmp(done)
	lo.b.SetBlock(done)
	return lo.b.Load(ir.I1, slot), tyBool, nil
}

// truthy evaluates an expression as a branch condition with C semantics:
// bool as-is; integers and pointers compare against zero/null.
func (lo *lowerer) truthy(e Expr) (ir.Value, error) {
	v, vt, err := lo.value(e)
	if err != nil {
		return nil, err
	}
	return lo.truthyValue(v, vt, e.exprLine())
}

func (lo *lowerer) truthyValue(v ir.Value, vt *Type, line int) (ir.Value, error) {
	switch {
	case vt.Kind == TBool:
		return v, nil
	case vt.IsInteger():
		v64, _ := lo.promote(v, vt)
		return lo.b.Cmp(ir.OpNe, v64, ir.ConstInt(0)), nil
	case vt.Kind == TPtr:
		return lo.b.Cmp(ir.OpNe, v, ir.Null()), nil
	}
	return nil, lo.errf(line, "%s is not usable as a condition", vt)
}

// cast lowers an explicit (T)x cast.
func (lo *lowerer) cast(x *CastExpr) (ir.Value, *Type, error) {
	to, err := lo.c.resolveType(x.To)
	if err != nil {
		return nil, nil, err
	}
	v, vt, err := lo.value(x.X)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case vt.equal(to):
		return v, to, nil
	case vt.Kind == TPtr && to.Kind == TPtr:
		return v, to, nil // opaque pointers: free conversion
	case vt.IsInteger() && to.IsInteger():
		cv, err := lo.convert(v, vt, to, x.Line)
		return cv, to, err
	case vt.Kind == TBool && to.IsInteger():
		wide := lo.b.Cast(ir.OpZExt, ir.I64, v)
		cv, err := lo.convert(wide, tyInt, to, x.Line)
		return cv, to, err
	case vt.IsInteger() && to.Kind == TBool:
		v64, _ := lo.promote(v, vt)
		return lo.b.Cmp(ir.OpNe, v64, ir.ConstInt(0)), tyBool, nil
	case vt.IsInteger() && to.Kind == TPtr:
		v64, _ := lo.promote(v, vt)
		return lo.b.Cast(ir.OpIntToPtr, ir.Ptr, v64), to, nil
	case vt.Kind == TPtr && to.Kind == TInt:
		return lo.b.Cast(ir.OpPtrToInt, ir.I64, v), to, nil
	}
	return nil, nil, lo.errf(x.Line, "invalid cast from %s to %s", vt, to)
}

// convert implicitly converts v (of type from) to type want.
func (lo *lowerer) convert(v ir.Value, from, want *Type, line int) (ir.Value, error) {
	switch {
	case from.equal(want):
		return v, nil
	case from.Kind == TInt && want.Kind == TByte:
		if c, ok := v.(*ir.Const); ok {
			return ir.ConstI8(c.Val), nil
		}
		return lo.b.Cast(ir.OpTrunc, ir.I8, v), nil
	case from.Kind == TByte && want.Kind == TInt:
		v64, _ := lo.promote(v, from)
		return v64, nil
	case from.Kind == TPtr && want.Kind == TPtr:
		// null (void*) to any pointer; byte* as the universal pointer.
		if from.Elem.Kind == TVoid || from.isBytePtr() || want.isBytePtr() {
			return v, nil
		}
	}
	return nil, lo.errf(line, "cannot use %s where %s is required", from, want)
}

// atomicRMWIntrinsics maps intrinsic names to RMW flavours.
var atomicRMWIntrinsics = map[string]ir.RMWKind{
	"atomic_add":  ir.RMWAdd,
	"atomic_xchg": ir.RMWXchg,
}

// atomicAccessIntrinsic recognizes the atomic load/store intrinsic
// names and yields the memory order and direction.
func atomicAccessIntrinsic(name string) (ord ir.MemOrder, isLoad, ok bool) {
	switch name {
	case "atomic_load":
		return ir.OrderSeqCst, true, true
	case "atomic_load_acquire":
		return ir.OrderAcquire, true, true
	case "atomic_store":
		return ir.OrderSeqCst, false, true
	case "atomic_store_release":
		return ir.OrderRelease, false, true
	}
	return 0, false, false
}

// atomicPtr evaluates an atomic intrinsic's pointer argument, requiring
// a pointer to int (atomics operate on i64 cells).
func (lo *lowerer) atomicPtr(name string, e Expr) (ir.Value, error) {
	p, pt, err := lo.value(e)
	if err != nil {
		return nil, err
	}
	if pt.Kind != TPtr || pt.Elem.Kind != TInt {
		return nil, lo.errf(e.exprLine(), "%s requires a pointer to int, not %s", name, pt)
	}
	return p, nil
}

// atomicAccess lowers atomic_load[_acquire] / atomic_store[_release].
func (lo *lowerer) atomicAccess(x *CallExpr, ord ir.MemOrder, isLoad bool) (ir.Value, *Type, error) {
	if isLoad {
		if len(x.Args) != 1 {
			return nil, nil, lo.errf(x.Line, "%s takes (pointer)", x.Name)
		}
		p, err := lo.atomicPtr(x.Name, x.Args[0])
		if err != nil {
			return nil, nil, err
		}
		return lo.b.AtomicLoad(ord, p), tyInt, nil
	}
	if len(x.Args) != 2 {
		return nil, nil, lo.errf(x.Line, "%s takes (pointer, value)", x.Name)
	}
	p, err := lo.atomicPtr(x.Name, x.Args[0])
	if err != nil {
		return nil, nil, err
	}
	v, vt, err := lo.value(x.Args[1])
	if err != nil {
		return nil, nil, err
	}
	cv, err := lo.convert(v, vt, tyInt, x.Line)
	if err != nil {
		return nil, nil, err
	}
	lo.b.AtomicStore(ord, cv, p)
	return nil, tyVoid, nil
}

// atomicRMW lowers atomic_add / atomic_xchg; the result is the previous
// value of the cell.
func (lo *lowerer) atomicRMW(x *CallExpr, rmw ir.RMWKind) (ir.Value, *Type, error) {
	if len(x.Args) != 2 {
		return nil, nil, lo.errf(x.Line, "%s takes (pointer, value)", x.Name)
	}
	p, err := lo.atomicPtr(x.Name, x.Args[0])
	if err != nil {
		return nil, nil, err
	}
	v, vt, err := lo.value(x.Args[1])
	if err != nil {
		return nil, nil, err
	}
	cv, err := lo.convert(v, vt, tyInt, x.Line)
	if err != nil {
		return nil, nil, err
	}
	return lo.b.AtomicRMW(rmw, cv, p), tyInt, nil
}

// atomicCAS lowers atomic_cas(p, expect, new); the result is the
// previous value (the swap happened iff it equals expect).
func (lo *lowerer) atomicCAS(x *CallExpr) (ir.Value, *Type, error) {
	if len(x.Args) != 3 {
		return nil, nil, lo.errf(x.Line, "atomic_cas takes (pointer, expect, new)")
	}
	p, err := lo.atomicPtr(x.Name, x.Args[0])
	if err != nil {
		return nil, nil, err
	}
	vals := make([]ir.Value, 2)
	for i, e := range x.Args[1:] {
		v, vt, err := lo.value(e)
		if err != nil {
			return nil, nil, err
		}
		if vals[i], err = lo.convert(v, vt, tyInt, x.Line); err != nil {
			return nil, nil, err
		}
	}
	return lo.b.AtomicCAS(vals[0], vals[1], p), tyInt, nil
}

// spawnCall lowers spawn(worker, args...): the first argument names a
// defined function; the rest are its arguments. The result is the
// thread handle join takes.
func (lo *lowerer) spawnCall(x *CallExpr) (ir.Value, *Type, error) {
	if len(x.Args) < 1 {
		return nil, nil, lo.errf(x.Line, "spawn takes (function, args...)")
	}
	id, ok := x.Args[0].(*Ident)
	if !ok {
		return nil, nil, lo.errf(x.Line, "spawn's first argument must name a function")
	}
	fi, ok := lo.c.funcs[id.Name]
	if !ok {
		return nil, nil, lo.errf(x.Line, "spawn of undefined function %q", id.Name)
	}
	if fi.extern {
		return nil, nil, lo.errf(x.Line, "cannot spawn external function %q", id.Name)
	}
	rest := x.Args[1:]
	if len(rest) != len(fi.params) {
		return nil, nil, lo.errf(x.Line, "spawn of %s takes %d argument(s), got %d", id.Name, len(fi.params), len(rest))
	}
	args := make([]ir.Value, len(rest))
	for i, a := range rest {
		v, vt, err := lo.value(a)
		if err != nil {
			return nil, nil, err
		}
		if args[i], err = lo.convert(v, vt, fi.params[i], a.exprLine()); err != nil {
			return nil, nil, err
		}
	}
	return lo.b.Spawn(fi.fn, args...), tyInt, nil
}

// call lowers intrinsics and function calls.
func (lo *lowerer) call(x *CallExpr, allowVoid bool) (ir.Value, *Type, error) {
	if k, ok := flushIntrinsics[x.Name]; ok {
		if len(x.Args) != 1 {
			return nil, nil, lo.errf(x.Line, "%s takes exactly one pointer", x.Name)
		}
		v, vt, err := lo.value(x.Args[0])
		if err != nil {
			return nil, nil, err
		}
		if vt.Kind != TPtr {
			return nil, nil, lo.errf(x.Line, "%s requires a pointer, not %s", x.Name, vt)
		}
		lo.b.Flush(k, v)
		return nil, tyVoid, nil
	}
	if k, ok := fenceIntrinsics[x.Name]; ok {
		if len(x.Args) != 0 {
			return nil, nil, lo.errf(x.Line, "%s takes no arguments", x.Name)
		}
		lo.b.Fence(k)
		return nil, tyVoid, nil
	}
	if x.Name == "ntstore" {
		if len(x.Args) != 2 {
			return nil, nil, lo.errf(x.Line, "ntstore takes (pointer, value)")
		}
		p, pt, err := lo.value(x.Args[0])
		if err != nil {
			return nil, nil, err
		}
		if pt.Kind != TPtr || !pt.Elem.IsScalar() {
			return nil, nil, lo.errf(x.Line, "ntstore requires a pointer to a scalar, not %s", pt)
		}
		v, vt, err := lo.value(x.Args[1])
		if err != nil {
			return nil, nil, err
		}
		cv, err := lo.convert(v, vt, pt.Elem, x.Line)
		if err != nil {
			return nil, nil, err
		}
		lo.b.NTStore(pt.Elem.IR(), cv, p)
		return nil, tyVoid, nil
	}
	if x.Name == "spawn" {
		return lo.spawnCall(x)
	}
	if x.Name == "join" {
		if len(x.Args) != 1 {
			return nil, nil, lo.errf(x.Line, "join takes one thread handle")
		}
		v, vt, err := lo.value(x.Args[0])
		if err != nil {
			return nil, nil, err
		}
		cv, err := lo.convert(v, vt, tyInt, x.Line)
		if err != nil {
			return nil, nil, err
		}
		return lo.b.Join(cv), tyInt, nil
	}
	if ord, isLoad, ok := atomicAccessIntrinsic(x.Name); ok {
		return lo.atomicAccess(x, ord, isLoad)
	}
	if rmw, ok := atomicRMWIntrinsics[x.Name]; ok {
		return lo.atomicRMW(x, rmw)
	}
	if x.Name == "atomic_cas" {
		return lo.atomicCAS(x)
	}
	fi, ok := lo.c.funcs[x.Name]
	if !ok {
		return nil, nil, lo.errf(x.Line, "undefined function %q", x.Name)
	}
	if len(x.Args) != len(fi.params) {
		return nil, nil, lo.errf(x.Line, "%s takes %d argument(s), got %d", x.Name, len(fi.params), len(x.Args))
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		v, vt, err := lo.value(a)
		if err != nil {
			return nil, nil, err
		}
		cv, err := lo.convert(v, vt, fi.params[i], a.exprLine())
		if err != nil {
			return nil, nil, err
		}
		args[i] = cv
	}
	res := lo.b.Call(fi.fn, args...)
	if fi.ret.Kind == TVoid {
		if !allowVoid {
			return nil, nil, lo.errf(x.Line, "void result of %s used as a value", x.Name)
		}
		return nil, tyVoid, nil
	}
	return res, fi.ret, nil
}
