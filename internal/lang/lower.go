package lang

import (
	"encoding/binary"
	"fmt"

	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
)

// Compile parses, type-checks and lowers a pmc source file into an IR
// module. Lowering is clang -O0 shaped: every local (including parameters)
// gets an entry-block alloca, all control flow is explicit blocks, and
// every instruction carries its source line.
func Compile(filename, src string) (*ir.Module, error) {
	return CompileObs(filename, src, nil)
}

// CompileObs is Compile with telemetry: the lex, parse, and lower phases
// each get a child span of sp (nil disables recording).
func CompileObs(filename, src string, sp *obs.Span) (*ir.Module, error) {
	lsp := sp.Start("lex")
	toks, err := newLexer(filename, src).lex()
	lsp.Add("lang.tokens", int64(len(toks)))
	lsp.End()
	if err != nil {
		return nil, err
	}
	psp := sp.Start("parse")
	p := &parser{file: filename, toks: toks, structNames: map[string]bool{}}
	f, err := p.parseFile()
	psp.End()
	if err != nil {
		return nil, err
	}
	wsp := sp.Start("lower")
	defer wsp.End()
	m, err := Lower(f)
	if m != nil {
		wsp.Add("lang.funcs", int64(len(m.Funcs)))
		wsp.Add("ir.instrs", int64(m.NumInstrs()))
	}
	return m, err
}

// MustCompile is Compile for known-good sources (tests, corpus).
func MustCompile(filename, src string) *ir.Module {
	m, err := Compile(filename, src)
	if err != nil {
		panic(err)
	}
	return m
}

// stdSigs describes the pre-declared externals (see package comment).
var stdSigs = []struct {
	name   string
	ret    *Type
	params []*Type
}{
	{"pm_alloc", ptrTo(tyByte), []*Type{tyInt}},
	{"pm_root", ptrTo(tyByte), []*Type{tyInt}},
	{"malloc", ptrTo(tyByte), []*Type{tyInt}},
	{"free", tyVoid, []*Type{ptrTo(tyByte)}},
	{"memcpy", ptrTo(tyByte), []*Type{ptrTo(tyByte), ptrTo(tyByte), tyInt}},
	{"memset", ptrTo(tyByte), []*Type{ptrTo(tyByte), tyInt, tyInt}},
	{"flush_range", tyVoid, []*Type{ptrTo(tyByte), tyInt}},
	{"pm_checkpoint", tyVoid, nil},
	{"pm_assert", tyVoid, []*Type{tyInt, ptrTo(tyByte)}},
	{"print_int", tyVoid, []*Type{tyInt}},
	{"print_str", tyVoid, []*Type{ptrTo(tyByte)}},
	{"abort_msg", tyVoid, []*Type{ptrTo(tyByte)}},
}

type funcInfo struct {
	fn     *ir.Func
	params []*Type
	ret    *Type
	// extern marks the pre-declared externals (stdSigs) — they have no
	// body and cannot be spawned as threads.
	extern bool
}

type globalInfo struct {
	g  *ir.Global
	ty *Type
}

type compiler struct {
	file       string
	mod        *ir.Module
	structs    map[string]*Type
	fieldTypes map[string][]*Type
	consts     map[string]int64
	globals    map[string]*globalInfo
	funcs      map[string]*funcInfo
	strCount   int
}

// Lower translates a parsed file to IR.
func Lower(f *File) (*ir.Module, error) {
	c := &compiler{
		file:       f.Name,
		mod:        ir.NewModule(f.Name),
		structs:    make(map[string]*Type),
		fieldTypes: make(map[string][]*Type),
		consts:     make(map[string]int64),
		globals:    make(map[string]*globalInfo),
		funcs:      make(map[string]*funcInfo),
	}
	for _, sd := range f.Structs {
		if err := c.declareStruct(sd); err != nil {
			return nil, err
		}
	}
	for _, cd := range f.Consts {
		if _, dup := c.consts[cd.Name]; dup {
			return nil, c.errf(cd.Line, "duplicate constant %q", cd.Name)
		}
		v, err := c.evalConst(cd.X)
		if err != nil {
			return nil, err
		}
		c.consts[cd.Name] = v
	}
	for _, sig := range stdSigs {
		params := make([]*ir.Param, len(sig.params))
		for i, pt := range sig.params {
			params[i] = &ir.Param{Name: fmt.Sprintf("a%d", i), Ty: pt.IR()}
		}
		c.funcs[sig.name] = &funcInfo{
			fn:     c.mod.AddFunc(ir.NewFunc(sig.name, sig.ret.IR(), params...)),
			params: sig.params,
			ret:    sig.ret,
			extern: true,
		}
	}
	for _, gd := range f.Globals {
		if err := c.declareGlobal(gd); err != nil {
			return nil, err
		}
	}
	for _, fd := range f.Funcs {
		if err := c.declareFunc(fd); err != nil {
			return nil, err
		}
	}
	for _, fd := range f.Funcs {
		if err := c.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	if err := ir.Verify(c.mod); err != nil {
		return nil, fmt.Errorf("lang: internal error, lowered module does not verify: %w", err)
	}
	return c.mod, nil
}

func (c *compiler) errf(line int, format string, args ...any) error {
	return errf(c.file, line, format, args...)
}

// resolveType turns a syntactic TypeRef into a semantic type.
func (c *compiler) resolveType(tr TypeRef) (*Type, error) {
	var base *Type
	switch tr.Name {
	case "int":
		base = tyInt
	case "byte":
		base = tyByte
	case "bool":
		base = tyBool
	case "void":
		base = tyVoid
	default:
		st, ok := c.structs[tr.Name]
		if !ok {
			return nil, c.errf(tr.Line, "unknown type %q", tr.Name)
		}
		base = st
	}
	for i := 0; i < tr.Stars; i++ {
		base = ptrTo(base)
	}
	if tr.ArrayLen >= 0 {
		if base == tyVoid {
			return nil, c.errf(tr.Line, "array of void")
		}
		if tr.ArrayLen == 0 {
			return nil, c.errf(tr.Line, "zero-length array")
		}
		base = arrayOf(base, tr.ArrayLen)
	}
	return base, nil
}

func (c *compiler) declareStruct(sd *StructDecl) error {
	// The parser guarantees name uniqueness; fields may reference this
	// struct through pointers (the Type is registered before fields are
	// resolved, but the ir.StructType needs final field layouts, so
	// by-value self-reference is rejected via the size computation).
	t := &Type{Kind: TStruct}
	c.structs[sd.Name] = t
	var irFields []ir.Field
	var langFields []*Type
	seen := map[string]bool{}
	for _, fd := range sd.Fields {
		if seen[fd.Name] {
			return c.errf(fd.Line, "duplicate field %q in struct %s", fd.Name, sd.Name)
		}
		seen[fd.Name] = true
		ft, err := c.resolveType(fd.Type)
		if err != nil {
			return err
		}
		if ft.Kind == TVoid {
			return c.errf(fd.Line, "field %q has void type", fd.Name)
		}
		if ft.Kind == TStruct && ft == t {
			return c.errf(fd.Line, "struct %s contains itself by value", sd.Name)
		}
		irFields = append(irFields, ir.Field{Name: fd.Name, Type: ft.IR()})
		langFields = append(langFields, ft)
	}
	t.Struct = c.mod.AddStruct(ir.NewStruct(sd.Name, irFields))
	c.fieldTypes[sd.Name] = langFields
	return nil
}

func (c *compiler) declareGlobal(gd *GlobalDecl) error {
	if _, dup := c.globals[gd.Name]; dup {
		return c.errf(gd.Line, "duplicate global %q", gd.Name)
	}
	ty, err := c.resolveType(gd.Type)
	if err != nil {
		return err
	}
	if ty.Kind == TVoid {
		return c.errf(gd.Line, "global %q has void type", gd.Name)
	}
	g := &ir.Global{Name: gd.Name, Elem: ty.IR(), PM: gd.PM}
	if gd.Init != nil {
		init, err := c.encodeInit(gd, ty)
		if err != nil {
			return err
		}
		g.Init = init
	}
	c.mod.AddGlobal(g)
	c.globals[gd.Name] = &globalInfo{g: g, ty: ty}
	return nil
}

// encodeInit encodes a global initializer into the byte image.
func (c *compiler) encodeInit(gd *GlobalDecl, ty *Type) ([]byte, error) {
	if s, ok := gd.Init.(*StrLit); ok {
		if ty.Kind != TArray || ty.Elem.Kind != TByte {
			return nil, c.errf(gd.Line, "string initializer requires a byte array global")
		}
		if int64(len(s.Val))+1 > ty.Len {
			return nil, c.errf(gd.Line, "string initializer longer than array")
		}
		return append([]byte(s.Val), 0), nil
	}
	v, err := c.evalConst(gd.Init)
	if err != nil {
		return nil, err
	}
	if !ty.IsInteger() && ty.Kind != TBool {
		return nil, c.errf(gd.Line, "constant initializer requires an integer global")
	}
	buf := make([]byte, ty.Size())
	switch ty.Size() {
	case 1:
		buf[0] = byte(v)
	default:
		binary.LittleEndian.PutUint64(buf, uint64(v))
	}
	return buf, nil
}

// evalConst evaluates a compile-time constant expression.
func (c *compiler) evalConst(e Expr) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *BoolLit:
		if x.Val {
			return 1, nil
		}
		return 0, nil
	case *UnaryExpr:
		v, err := c.evalConst(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		}
		return 0, c.errf(x.Line, "operator %q not constant", x.Op)
	case *SizeOfExpr:
		ty, err := c.resolveType(x.Of)
		if err != nil {
			return 0, err
		}
		return ty.Size(), nil
	case *Ident:
		if v, ok := c.consts[x.Name]; ok {
			return v, nil
		}
		return 0, c.errf(x.Line, "%q is not a constant", x.Name)
	case *BinaryExpr:
		a, err := c.evalConst(x.X)
		if err != nil {
			return 0, err
		}
		b, err := c.evalConst(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, c.errf(x.Line, "constant division by zero")
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, c.errf(x.Line, "constant division by zero")
			}
			return a % b, nil
		case "&":
			return a & b, nil
		case "|":
			return a | b, nil
		case "^":
			return a ^ b, nil
		case "<<":
			return a << (uint64(b) & 63), nil
		case ">>":
			return a >> (uint64(b) & 63), nil
		}
		return 0, c.errf(x.Line, "operator %q not constant", x.Op)
	}
	return 0, c.errf(e.exprLine(), "initializer is not a constant expression")
}

func (c *compiler) declareFunc(fd *FuncDecl) error {
	if _, dup := c.funcs[fd.Name]; dup {
		return c.errf(fd.Line, "duplicate function %q (externals are pre-declared)", fd.Name)
	}
	switch fd.Name {
	case "clwb", "clflush", "clflushopt", "sfence", "mfence", "ntstore":
		return c.errf(fd.Line, "%q is a persistence intrinsic and cannot be defined", fd.Name)
	case "spawn", "join", "atomic_load", "atomic_load_acquire", "atomic_store",
		"atomic_store_release", "atomic_add", "atomic_xchg", "atomic_cas":
		return c.errf(fd.Line, "%q is a concurrency intrinsic and cannot be defined", fd.Name)
	}
	ret, err := c.resolveType(fd.Ret)
	if err != nil {
		return err
	}
	if !ret.IsScalar() && ret.Kind != TVoid {
		return c.errf(fd.Line, "function %q returns non-scalar type %s", fd.Name, ret)
	}
	var irParams []*ir.Param
	var ptys []*Type
	seen := map[string]bool{}
	for _, pd := range fd.Params {
		if seen[pd.Name] {
			return c.errf(pd.Line, "duplicate parameter %q", pd.Name)
		}
		seen[pd.Name] = true
		pt, err := c.resolveType(pd.Type)
		if err != nil {
			return err
		}
		if !pt.IsScalar() {
			return c.errf(pd.Line, "parameter %q has non-scalar type %s (pass a pointer)", pd.Name, pt)
		}
		irParams = append(irParams, &ir.Param{Name: pd.Name, Ty: pt.IR()})
		ptys = append(ptys, pt)
	}
	fn := c.mod.AddFunc(ir.NewFunc(fd.Name, ret.IR(), irParams...))
	c.funcs[fd.Name] = &funcInfo{fn: fn, params: ptys, ret: ret}
	return nil
}

// internString creates (or reuses) a NUL-terminated global for a string
// literal and returns it.
func (c *compiler) internString(s string) *ir.Global {
	for _, g := range c.mod.Globals {
		if len(g.Init) == len(s)+1 && string(g.Init[:len(s)]) == s && !g.PM {
			if _, isStr := c.globals[g.Name]; !isStr && g.Init[len(s)] == 0 {
				return g
			}
		}
	}
	g := &ir.Global{
		Name: fmt.Sprintf("str%d", c.strCount),
		Elem: ir.Array(ir.I8, int64(len(s)+1)),
		Init: append([]byte(s), 0),
	}
	c.strCount++
	return c.mod.AddGlobal(g)
}
