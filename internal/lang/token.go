// Package lang implements pmc, the small C-like front-end language the
// corpus programs are written in — the counterpart of the C sources the
// paper's artifact compiles with clang/WLLVM. The compiler is a classic
// pipeline: lexer → recursive-descent parser → semantic analysis →
// lowering to the IR (clang -O0 shape: every local is an alloca).
//
// Language summary:
//
//	struct node { int key; node *next; };
//	pm int pool[1024];                  // persistent global
//	int add(int a, int b) { return a + b; }
//
//	types:      int (i64), byte (i8), bool (i1), void, T*, T[N]
//	statements: declarations, assignment (=, +=, -=), if/else, while,
//	            for, return, break, continue, blocks, expression stmts
//	expressions: integer/char/string literals, true/false/null, ident,
//	            unary - ! ~ * &, binary arithmetic/logic/comparison with
//	            C precedence, a[i], s.f, p->f, f(...), (T)e casts,
//	            sizeof(T)
//	persistence: clwb(p), clflushopt(p), clflush(p), sfence(), mfence(),
//	            ntstore(p, v) lower to the dedicated IR instructions;
//	            the standard externals (pm_alloc, pm_root, malloc, free,
//	            memcpy, memset, flush_range, pm_checkpoint, print_int,
//	            print_str, abort_msg) are pre-declared
package lang

import "fmt"

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokChar
	tokString
	tokPunct // operators and punctuation
)

// token is one lexeme.
type token struct {
	kind tokKind
	text string
	val  int64 // tokInt/tokChar
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokInt:
		return fmt.Sprintf("integer %d", t.val)
	case tokChar:
		return fmt.Sprintf("character literal %q", rune(t.val))
	case tokString:
		return fmt.Sprintf("string literal %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords of the language (checked against identifier misuse).
var keywords = map[string]bool{
	"struct": true, "pm": true, "int": true, "byte": true, "bool": true,
	"void": true, "if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true, "true": true,
	"false": true, "null": true, "sizeof": true, "switch": true,
	"case": true, "default": true, "const": true,
}

// Error is a positioned compile error.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

func errf(file string, line int, format string, args ...any) *Error {
	return &Error{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
}
