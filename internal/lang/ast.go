package lang

// The AST. Every node carries the 1-based source line for IR debug
// locations and error messages.

// File is a parsed translation unit.
type File struct {
	Name    string
	Structs []*StructDecl
	Consts  []*ConstDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// TypeRef is an unresolved type spelling: a base name plus pointer depth
// and optional array length ([N], globals and locals only).
type TypeRef struct {
	Name     string // "int", "byte", "bool", "void", or a struct name
	Stars    int
	ArrayLen int64 // -1 when not an array
	Line     int
}

// StructDecl declares a struct type.
type StructDecl struct {
	Name   string
	Fields []StructField
	Line   int
}

// StructField is one member.
type StructField struct {
	Name string
	Type TypeRef
	Line int
}

// ConstDecl declares a module-level integer constant.
type ConstDecl struct {
	Name string
	X    Expr
	Line int
}

// GlobalDecl declares a module-level variable, possibly persistent.
type GlobalDecl struct {
	Name string
	Type TypeRef
	PM   bool
	// Init is the optional initializer (integer constant or string
	// literal for byte arrays).
	Init Expr
	Line int
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Name   string
	Ret    TypeRef
	Params []ParamDecl
	Body   *BlockStmt
	Line   int
}

// ParamDecl is one parameter.
type ParamDecl struct {
	Name string
	Type TypeRef
	Line int
}

// Stmt is a statement node.
type Stmt interface{ stmtLine() int }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	Name string
	Type TypeRef
	Init Expr // optional
	Line int
}

// AssignStmt is lhs = rhs (or lhs op= rhs).
type AssignStmt struct {
	LHS Expr
	RHS Expr
	// Op is "" for plain assignment, else the compound operator ("+",
	// "-", ...).
	Op   string
	Line int
}

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if (cond) then [else].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // optional
	Line int
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
}

// ForStmt is for (init; cond; post) body; all three headers optional.
type ForStmt struct {
	Init Stmt // DeclStmt, AssignStmt or ExprStmt
	Cond Expr
	Post Stmt
	Body Stmt
	Line int
}

// SwitchStmt is switch (x) { case v, v: ... default: ... } with pmc
// semantics: no fallthrough (every case body exits the switch), constant
// case labels, and break allowed inside bodies.
type SwitchStmt struct {
	X       Expr
	Cases   []SwitchCase
	Default []Stmt
	Line    int
}

// SwitchCase is one labeled arm.
type SwitchCase struct {
	Vals []Expr
	Body []Stmt
	Line int
}

// ReturnStmt returns, optionally with a value.
type ReturnStmt struct {
	X    Expr // optional
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

func (s *BlockStmt) stmtLine() int    { return s.Line }
func (s *DeclStmt) stmtLine() int     { return s.Line }
func (s *AssignStmt) stmtLine() int   { return s.Line }
func (s *ExprStmt) stmtLine() int     { return s.Line }
func (s *IfStmt) stmtLine() int       { return s.Line }
func (s *WhileStmt) stmtLine() int    { return s.Line }
func (s *ForStmt) stmtLine() int      { return s.Line }
func (s *SwitchStmt) stmtLine() int   { return s.Line }
func (s *ReturnStmt) stmtLine() int   { return s.Line }
func (s *BreakStmt) stmtLine() int    { return s.Line }
func (s *ContinueStmt) stmtLine() int { return s.Line }

// Expr is an expression node.
type Expr interface{ exprLine() int }

// IntLit is an integer (or character) literal.
type IntLit struct {
	Val  int64
	Line int
}

// StrLit is a string literal (lowered to a NUL-terminated global byte
// array; its value is a byte*).
type StrLit struct {
	Val  string
	Line int
}

// BoolLit is true/false.
type BoolLit struct {
	Val  bool
	Line int
}

// NullLit is the null pointer.
type NullLit struct{ Line int }

// Ident references a variable or parameter.
type Ident struct {
	Name string
	Line int
}

// UnaryExpr is -x, !x, ~x, *p, &lv.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// BinaryExpr is x op y with C semantics (&& and || short-circuit).
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Line int
}

// CallExpr calls a named function (direct calls only, as in the IR).
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// IndexExpr is a[i] on arrays and pointers.
type IndexExpr struct {
	X, I Expr
	Line int
}

// MemberExpr is s.f or p->f.
type MemberExpr struct {
	X     Expr
	Name  string
	Arrow bool
	Line  int
}

// CastExpr is (T)x.
type CastExpr struct {
	To   TypeRef
	X    Expr
	Line int
}

// SizeOfExpr is sizeof(T).
type SizeOfExpr struct {
	Of   TypeRef
	Line int
}

func (e *IntLit) exprLine() int     { return e.Line }
func (e *StrLit) exprLine() int     { return e.Line }
func (e *BoolLit) exprLine() int    { return e.Line }
func (e *NullLit) exprLine() int    { return e.Line }
func (e *Ident) exprLine() int      { return e.Line }
func (e *UnaryExpr) exprLine() int  { return e.Line }
func (e *BinaryExpr) exprLine() int { return e.Line }
func (e *CallExpr) exprLine() int   { return e.Line }
func (e *IndexExpr) exprLine() int  { return e.Line }
func (e *MemberExpr) exprLine() int { return e.Line }
func (e *CastExpr) exprLine() int   { return e.Line }
func (e *SizeOfExpr) exprLine() int { return e.Line }
