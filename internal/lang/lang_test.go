package lang

import (
	"strings"
	"testing"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

// compileRun compiles src and runs entry, returning (result, stdout).
func compileRun(t *testing.T, src, entry string, args ...uint64) (uint64, string) {
	t.Helper()
	m, err := Compile("test.pmc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out strings.Builder
	mach, err := interp.New(m, interp.Options{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := mach.Run(entry, args...)
	if err != nil {
		t.Fatalf("run: %v\nmodule:\n%s", err, ir.Print(m))
	}
	return ret, out.String()
}

func TestArithmeticAndPrecedence(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	return 2 + 3 * 4 - 10 / 2 + (1 << 4) - 7 % 3;
}`, "main")
	if got != 2+12-5+16-1 {
		t.Errorf("main() = %d", got)
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int a = 0xF0;
	int b = 0x0F;
	return (a | b) ^ (a & b) ^ (~0 & 0xFF) ^ (a >> 2) ^ (b << 2);
}`, "main")
	want := uint64((0xF0|0x0F)^(0xF0&0x0F)^0xFF) ^ (0xF0 >> 2) ^ (0x0F << 2)
	if got != want {
		t.Errorf("main() = %#x, want %#x", got, want)
	}
}

func TestVariablesAndCompoundAssign(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int x = 10;
	x += 5;
	x -= 2;
	x *= 3;
	x /= 2;
	x %= 11;
	x <<= 2;
	x >>= 1;
	x++;
	x--;
	x |= 8;
	x &= 0xE;
	x ^= 1;
	return x;
}`, "main")
	x := int64(10)
	x += 5
	x -= 2
	x *= 3
	x /= 2
	x %= 11
	x <<= 2
	x >>= 1
	x |= 8
	x &= 0xE
	x ^= 1
	if int64(got) != x {
		t.Errorf("main() = %d, want %d", got, x)
	}
}

func TestControlFlow(t *testing.T) {
	got, _ := compileRun(t, `
int collatzSteps(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; }
		else { n = 3 * n + 1; }
		steps++;
	}
	return steps;
}
int main() { return collatzSteps(27); }`, "main")
	if got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int sum = 0;
	for (int i = 0; i < 100; i++) {
		if (i % 3 == 0) { continue; }
		if (i > 50) { break; }
		sum += i;
	}
	return sum;
}`, "main")
	want := uint64(0)
	for i := 0; i < 100; i++ {
		if i%3 == 0 {
			continue
		}
		if i > 50 {
			break
		}
		want += uint64(i)
	}
	if got != want {
		t.Errorf("main() = %d, want %d", got, want)
	}
}

func TestShortCircuit(t *testing.T) {
	_, out := compileRun(t, `
int sideEffect(int v) { print_int(v); return v; }
int main() {
	if (sideEffect(0) != 0 && sideEffect(1) != 0) { print_int(100); }
	if (sideEffect(2) != 0 || sideEffect(3) != 0) { print_int(200); }
	return 0;
}`, "main")
	if out != "0\n2\n200\n" {
		t.Errorf("stdout = %q (short-circuit broken)", out)
	}
}

func TestRecursion(t *testing.T) {
	got, _ := compileRun(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(20); }`, "main")
	if got != 6765 {
		t.Errorf("fib(20) = %d", got)
	}
}

func TestPointersAndAddressOf(t *testing.T) {
	got, _ := compileRun(t, `
void bump(int *p, int by) { *p = *p + by; }
int main() {
	int x = 5;
	int *p = &x;
	bump(p, 10);
	bump(&x, 1);
	return *p + x;
}`, "main")
	if got != 32 {
		t.Errorf("main() = %d, want 32", got)
	}
}

func TestArraysAndPointerArithmetic(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int a[10];
	for (int i = 0; i < 10; i++) { a[i] = i * i; }
	int *p = a;
	int *q = p + 7;
	int diff = q - p;
	return *q + a[3] + diff + *(a + 2);
}`, "main")
	if got != 49+9+7+4 {
		t.Errorf("main() = %d", got)
	}
}

func TestStructsAndMembers(t *testing.T) {
	got, _ := compileRun(t, `
struct point { int x; int y; };
struct rect { point tl; point br; };
int area(rect *r) {
	return (r->br.x - r->tl.x) * (r->br.y - r->tl.y);
}
int main() {
	rect r;
	r.tl.x = 1; r.tl.y = 2;
	r.br.x = 11; r.br.y = 22;
	return area(&r);
}`, "main")
	if got != 200 {
		t.Errorf("area = %d, want 200", got)
	}
}

func TestLinkedListOnHeap(t *testing.T) {
	got, _ := compileRun(t, `
struct node { int val; node *next; };
int main() {
	node *head = null;
	for (int i = 1; i <= 5; i++) {
		node *n = (node*) malloc(sizeof(node));
		n->val = i;
		n->next = head;
		head = n;
	}
	int sum = 0;
	for (node *it = head; it != null; it = it->next) {
		sum = sum * 10 + it->val;
	}
	return sum;
}`, "main")
	if got != 54321 {
		t.Errorf("list traversal = %d, want 54321", got)
	}
}

func TestByteOpsAndCasts(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	byte b = 200;
	byte c = 100;
	byte sum = b + c;       // wraps at 8 bits: 44
	int wide = (int) sum;
	int narrowed = (byte) 0x1FF;  // 255
	bool t = (bool) 5;
	return wide + narrowed + (int) t;
}`, "main")
	if got != 44+255+1 {
		t.Errorf("main() = %d", got)
	}
}

func TestGlobalsAndInitializers(t *testing.T) {
	got, out := compileRun(t, `
int counter = 41;
byte tag = 7;
byte msg[16] = "hi pmc";
int main() {
	counter++;
	print_str(msg);
	return counter + (int) tag;
}`, "main")
	if got != 49 {
		t.Errorf("main() = %d", got)
	}
	if out != "hi pmc\n" {
		t.Errorf("stdout = %q", out)
	}
}

func TestStringLiteralsInterned(t *testing.T) {
	m, err := Compile("test.pmc", `
void f() { print_str("same"); print_str("same"); print_str("different"); }
`)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, g := range m.Globals {
		if strings.HasPrefix(g.Name, "str") {
			count++
		}
	}
	if count != 2 {
		t.Errorf("interned strings = %d, want 2", count)
	}
}

func TestPersistenceIntrinsics(t *testing.T) {
	m, err := Compile("test.pmc", `
pm int cell;
void persistAll() {
	cell = 42;
	clwb(&cell);
	sfence();
	clflushopt(&cell);
	mfence();
	clflush(&cell);
	ntstore(&cell, 43);
	sfence();
}`)
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(m)
	for _, want := range []string{"flush clwb", "flush clflushopt", "flush clflush", "fence sfence", "fence mfence", "ntstore"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in lowered IR:\n%s", want, text)
		}
	}
	mach, err := interp.New(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("persistAll"); err != nil {
		t.Fatal(err)
	}
	if n := len(mach.Violations); n != 0 {
		t.Errorf("violations = %d", n)
	}
}

func TestPMGlobalAndCheckpoint(t *testing.T) {
	m, err := Compile("test.pmc", `
pm int cell;
void buggy() {
	cell = 1;
	pm_checkpoint();
}`)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := interp.New(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("buggy"); err != nil {
		t.Fatal(err)
	}
	if len(mach.Violations) == 0 {
		t.Error("expected a durability violation")
	}
}

func TestMemcpyMemsetBuiltins(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	byte *a = malloc(64);
	byte *b = malloc(64);
	memset(a, 7, 64);
	memcpy(b, a, 64);
	int sum = 0;
	for (int i = 0; i < 64; i++) { sum += (int) b[i]; }
	return sum;
}`, "main")
	if got != 7*64 {
		t.Errorf("main() = %d", got)
	}
}

func TestStructArraysInStructs(t *testing.T) {
	got, _ := compileRun(t, `
struct bucket { int keys[4]; int n; };
int main() {
	bucket b;
	b.n = 0;
	for (int i = 0; i < 4; i++) {
		b.keys[i] = 10 * i;
		b.n++;
	}
	return b.keys[3] + b.n;
}`, "main")
	if got != 34 {
		t.Errorf("main() = %d", got)
	}
}

func TestSizeof(t *testing.T) {
	got, _ := compileRun(t, `
struct pair { int a; byte b; };
int main() {
	return sizeof(int) + sizeof(byte) + sizeof(bool) + sizeof(pair) + sizeof(int*);
}`, "main")
	if got != 8+1+1+16+8 {
		t.Errorf("main() = %d", got)
	}
}

func TestCharLiteralsAndStrings(t *testing.T) {
	got, _ := compileRun(t, `
int strlen_(byte *s) {
	int n = 0;
	while (s[n] != 0) { n++; }
	return n;
}
int main() {
	byte *s = "hello\n";
	if (s[0] != 'h') { return 1; }
	if (s[5] != '\n') { return 2; }
	return strlen_(s);
}`, "main")
	if got != 6 {
		t.Errorf("main() = %d, want 6", got)
	}
}

func TestNegativeNumbersAndUnary(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int a = -5;
	int b = ~a;      // 4
	bool c = !(a == -5); // false
	return -a + b + (int) c;
}`, "main")
	if got != 9 {
		t.Errorf("main() = %d, want 9", got)
	}
}

func TestDeclInLoopDoesNotGrowStack(t *testing.T) {
	// Locals declared in loop bodies must reuse one slot (alloca hoisted
	// to the entry block), or deep loops would overflow the stack.
	_, _ = compileRun(t, `
int main() {
	int total = 0;
	for (int i = 0; i < 100000; i++) {
		int tmp = i * 2;
		total += tmp;
	}
	return total % 1000;
}`, "main")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined variable", `int main() { return x; }`, "undefined variable"},
		{"undefined function", `int main() { return f(); }`, "undefined function"},
		{"arg count", `int f(int a) { return a; } int main() { return f(); }`, "argument"},
		{"type mismatch assign", `int main() { int *p = 5; return 0; }`, "cannot use"},
		{"void variable", `int main() { void v; return 0; }`, "void type"},
		{"break outside loop", `int main() { break; return 0; }`, "break outside"},
		{"continue outside loop", `int main() { continue; return 0; }`, "continue outside"},
		{"duplicate local", `int main() { int a; int a; return 0; }`, "duplicate variable"},
		{"duplicate function", `int f() { return 0; } int f() { return 0; }`, "duplicate function"},
		{"redefine builtin", `int malloc(int n) { return n; }`, "duplicate function"},
		{"redefine intrinsic", `void sfence() { }`, "intrinsic"},
		{"unknown field", `struct s { int a; }; int main() { s v; return v.b; }`, "no field"},
		{"dot on non-struct", `int main() { int a; return a.b; }`, "non-struct"},
		{"deref int", `int main() { int a; return *a; }`, "dereference"},
		{"void return value", `void f() { return 5; }`, "void function returns"},
		{"missing return value", `int f() { return; }`, "missing return value"},
		{"not assignable", `int main() { 5 = 6; return 0; }`, "not assignable"},
		{"struct by value param", `struct s { int a; }; void f(s v) { }`, "non-scalar"},
		{"struct self-containment", `struct s { s inner; };`, "contains itself"},
		{"bad compare", `struct s { int a; }; int main() { s a; s b; if (a == b) {} return 0; }`, "not usable directly"},
		{"pm function", `pm int f() { return 0; }`, "cannot be 'pm'"},
		{"string init non-array", `int g = "hello"; int main() { return 0; }`, "byte array"},
		{"string too long", `byte g[3] = "hello"; int main() { return 0; }`, "longer than array"},
		{"parse: missing semicolon", `int main() { return 0 }`, "expected"},
		{"parse: bad token", "int main() { return $; }", "unexpected character"},
		{"parse: unterminated block", `int main() { return 0;`, "unterminated"},
		{"parse: keyword as name", `int if() { return 0; }`, "keyword"},
		{"lex: unterminated string", `byte *s = "abc`, "unterminated string"},
		{"lex: bad escape", `byte *s = "a\qb";`, "unknown escape"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("test.pmc", c.src)
			if err == nil {
				t.Fatal("compile succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want mention of %q", err, c.want)
			}
		})
	}
}

func TestSourceLocationsOnInstructions(t *testing.T) {
	m, err := Compile("loc.pmc", `pm int cell;
void f() {
	cell = 1;
	clwb(&cell);
	sfence();
}`)
	if err != nil {
		t.Fatal(err)
	}
	var storeLoc ir.Loc
	for _, b := range m.Func("f").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && in.StoreTy == ir.I64 {
				storeLoc = in.Loc
			}
		}
	}
	if storeLoc.File != "loc.pmc" || storeLoc.Line != 3 {
		t.Errorf("store loc = %v, want loc.pmc:3", storeLoc)
	}
}

func TestCommentsAndHexLiterals(t *testing.T) {
	got, _ := compileRun(t, `
// line comment
/* block
   comment */
int main() {
	int a = 0xFF; // trailing
	/* inline */ int b = 0x10;
	return a + b;
}`, "main")
	if got != 0x10F {
		t.Errorf("main() = %#x", got)
	}
}

func TestLoweredModuleRoundTrips(t *testing.T) {
	m, err := Compile("rt.pmc", `
struct node { int key; node *next; };
pm byte pool[256];
int g = 3;
int touch(node *n, int k) {
	n->key = k;
	clwb(&n->key);
	sfence();
	return n->key;
}
int main() {
	node *n = (node*) pm_alloc(sizeof(node));
	return touch(n, g);
}`)
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(m)
	back, err := ir.ParseModule(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if ir.Print(back) != text {
		t.Error("lowered module does not round-trip through text")
	}
}

func TestConstGlobalInitializers(t *testing.T) {
	got, _ := compileRun(t, `
int a = -5;
int b = ~0;
int c = sizeof(int) * 4 + 2;
int d = 100 / 4 - 1;
bool e = true;
byte f = 200;
int main() {
	return a + b + c + d + (int) e + (int) f;
}`, "main")
	want := int64(-5) + -1 + 34 + 24 + 1 + 200
	if int64(got) != want {
		t.Errorf("main() = %d, want %d", int64(got), want)
	}
}

func TestConstInitializerErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"div by zero", `int g = 1 / 0; int main() { return 0; }`, "division by zero"},
		{"non-const call", `int g = f(); int f() { return 1; } int main() { return 0; }`, "constant"},
		{"non-const op", `int g = 1 && 2; int main() { return 0; }`, "not constant"},
		{"struct init", `struct s { int a; }; s g = 5; int main() { return 0; }`, "integer global"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile("t.pmc", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestTruthinessForms(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int n = 3;
	byte b = 1;
	int *p = &n;
	int *q = null;
	int hits = 0;
	if (n) { hits++; }
	if (b) { hits++; }
	if (p) { hits++; }
	if (q) { hits += 100; }
	if (!q) { hits++; }
	while (n) { n--; hits++; }
	return hits;
}`, "main")
	if got != 4+3 {
		t.Errorf("main() = %d, want 7", got)
	}
}

func TestCastMatrix(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	bool t1 = (bool) 7;        // true
	int i1 = (int) t1;         // 1
	byte b1 = (byte) 300;      // 44
	int i2 = (int) b1;         // 44
	int *p = (int*) malloc(8);
	*p = 9;
	byte *bp = (byte*) p;      // ptr-ptr cast
	int *p2 = (int*) bp;
	int i3 = 0;
	if ((int) p2 == (int) p) { i3 = 1; }
	return i1 + i2 + *p2 + i3;
}`, "main")
	if got != 1+44+9+1 {
		t.Errorf("main() = %d, want 55", got)
	}
}

func TestPointerComparisonsAndDiff(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int a[8];
	int *p = &a[2];
	int *q = &a[6];
	int hits = 0;
	if (p != q) { hits++; }
	if (p == &a[2]) { hits++; }
	int d = q - p;
	return hits * 10 + d;
}`, "main")
	if got != 24 {
		t.Errorf("main() = %d, want 24", got)
	}
}

func TestForLoopVariants(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int sum = 0;
	int i = 0;
	for (; i < 4; i++) { sum += i; }      // no init
	for (int j = 0; ; j++) {              // no cond
		if (j == 3) { break; }
		sum += 10;
	}
	for (int k = 8; k > 0; ) { k /= 2; sum += 1; } // no post
	return sum;
}`, "main")
	if got != 6+30+4 {
		t.Errorf("main() = %d, want 40", got)
	}
}

func TestMixedByteIntArithmetic(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	byte b = 250;
	int i = 10;
	int wide = b + i;   // byte promoted: 260
	byte narrow = b + (byte) i; // wraps: 4
	return wide + (int) narrow;
}`, "main")
	if got != 260+4 {
		t.Errorf("main() = %d, want 264", got)
	}
}

func TestVoidCallAsValueRejected(t *testing.T) {
	_, err := Compile("t.pmc", `
void f() { }
int main() { return f(); }`)
	if err == nil || !strings.Contains(err.Error(), "void") {
		t.Errorf("err = %v, want void misuse", err)
	}
	_, err = Compile("t.pmc", `int main() { int x = sfence(); return x; }`)
	if err == nil {
		t.Error("intrinsic used as value must be rejected")
	}
}

func TestIndexThroughPointerChain(t *testing.T) {
	got, _ := compileRun(t, `
struct row { int cells[4]; };
int main() {
	row *r = (row*) malloc(sizeof(row));
	for (int i = 0; i < 4; i++) { r->cells[i] = i * i; }
	int *flat = (int*) r;
	return r->cells[3] + flat[2];
}`, "main")
	if got != 9+4 {
		t.Errorf("main() = %d, want 13", got)
	}
}

func TestSwitchStatement(t *testing.T) {
	got, _ := compileRun(t, `
int classify(int n) {
	switch (n % 10) {
	case 0:
		return 100;
	case 1, 2, 3:
		return 200;
	case 4:
		break;           // exits the switch
	default:
		return 400;
	}
	return 300;          // reached via 'break' on case 4
}
int main() {
	return classify(20) + classify(12) + classify(14) + classify(17);
}`, "main")
	if got != 100+200+300+400 {
		t.Errorf("main() = %d, want 1000", got)
	}
}

func TestSwitchNoFallthrough(t *testing.T) {
	_, out := compileRun(t, `
int main() {
	for (int i = 0; i < 3; i++) {
		switch (i) {
		case 0:
			print_int(10);
		case 1:
			print_int(11);
		default:
			print_int(12);
		}
	}
	return 0;
}`, "main")
	if out != "10\n11\n12\n" {
		t.Errorf("stdout = %q (fallthrough leaked?)", out)
	}
}

func TestSwitchInsideLoop(t *testing.T) {
	got, _ := compileRun(t, `
int main() {
	int evens = 0;
	int odds = 0;
	for (int i = 0; i < 10; i++) {
		switch (i % 2) {
		case 0:
			evens++;
		default:
			odds++;
		}
	}
	// 'continue' still binds to the loop inside a switch body.
	int skipped = 0;
	for (int i = 0; i < 6; i++) {
		switch (i) {
		case 2, 3:
			continue;
		default:
		}
		skipped++;
	}
	return evens * 100 + odds * 10 + skipped;
}`, "main")
	if got != 5*100+5*10+4 {
		t.Errorf("main() = %d, want 554", got)
	}
}

func TestSwitchErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"duplicate default", `int main() { switch (1) { default: default: } return 0; }`, "duplicate default"},
		{"non-integer scrutinee", `int main() { int *p = null; switch (p) { default: } return 0; }`, "integer"},
		{"non-integer label", `int main() { int *p = null; switch (1) { case p: } return 0; }`, "integer"},
		{"stray token", `int main() { switch (1) { return 0; } }`, "expected 'case'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile("t.pmc", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestConstDeclarations(t *testing.T) {
	got, _ := compileRun(t, `
const CAP = 16;
const DOUBLE = CAP * 2;
const MASK = ~0 & 255;
int main() {
	int total = 0;
	for (int i = 0; i < CAP; i++) { total++; }
	return total + DOUBLE + MASK;
}`, "main")
	if got != 16+32+255 {
		t.Errorf("main() = %d, want 303", got)
	}
}

func TestConstErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"duplicate", `const A = 1; const A = 2; int main() { return 0; }`, "duplicate constant"},
		{"non-const init", `int f() { return 1; } const A = f(); int main() { return 0; }`, "constant"},
		{"assignment", `const A = 1; int main() { A = 2; return 0; }`, "not assignable"},
		{"undefined in const", `const A = B; int main() { return 0; }`, "not a constant"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile("t.pmc", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestConstShadowedByLocal(t *testing.T) {
	got, _ := compileRun(t, `
const N = 100;
int main() {
	int N = 5;
	return N;
}`, "main")
	if got != 5 {
		t.Errorf("main() = %d, want local shadowing (5)", got)
	}
}
