package lang

// Parse parses a pmc source file.
func Parse(filename, src string) (*File, error) {
	toks, err := newLexer(filename, src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{file: filename, toks: toks, structNames: map[string]bool{}}
	return p.parseFile()
}

type parser struct {
	file        string
	toks        []token
	i           int
	structNames map[string]bool
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) next() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return errf(p.file, p.cur().line, format, args...)
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) isKw(s string) bool {
	return p.cur().kind == tokIdent && p.cur().text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKw(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return p.errf("expected %q, found %s", s, p.cur())
}

func (p *parser) isTypeName(t token) bool {
	if t.kind != tokIdent {
		return false
	}
	switch t.text {
	case "int", "byte", "bool", "void":
		return true
	}
	return p.structNames[t.text]
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().kind != tokEOF {
		switch {
		case p.isKw("struct") && p.peek().kind == tokIdent && p.toks[min(p.i+2, len(p.toks)-1)].text == "{":
			st, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, st)
		case p.isKw("const"):
			line := p.cur().line
			p.next()
			if p.cur().kind != tokIdent || keywords[p.cur().text] {
				return nil, p.errf("expected constant name, found %s", p.cur())
			}
			name := p.next().text
			if err := p.expect("="); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, &ConstDecl{Name: name, X: x, Line: line})
		default:
			pm := false
			if p.isKw("pm") {
				p.next()
				pm = true
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected declaration name, found %s", p.cur())
			}
			nameTok := p.next()
			if keywords[nameTok.text] {
				return nil, errf(p.file, nameTok.line, "keyword %q used as a name", nameTok.text)
			}
			if p.isPunct("(") {
				if pm {
					return nil, errf(p.file, nameTok.line, "functions cannot be 'pm'")
				}
				fn, err := p.parseFunc(ty, nameTok)
				if err != nil {
					return nil, err
				}
				f.Funcs = append(f.Funcs, fn)
			} else {
				g, err := p.parseGlobalRest(ty, nameTok, pm)
				if err != nil {
					return nil, err
				}
				f.Globals = append(f.Globals, g)
			}
		}
	}
	return f, nil
}

func (p *parser) parseStruct() (*StructDecl, error) {
	line := p.cur().line
	p.next() // struct
	name := p.next().text
	if p.structNames[name] {
		return nil, errf(p.file, line, "duplicate struct %q", name)
	}
	p.structNames[name] = true
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &StructDecl{Name: name, Line: line}
	for !p.accept("}") {
		fty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected field name, found %s", p.cur())
		}
		fname := p.next()
		if p.accept("[") {
			if p.cur().kind != tokInt {
				return nil, p.errf("expected array length")
			}
			fty.ArrayLen = p.next().val
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		st.Fields = append(st.Fields, StructField{Name: fname.text, Type: fty, Line: fname.line})
	}
	p.accept(";")
	return st, nil
}

// parseType parses a base type name with pointer stars. Array suffixes are
// parsed by the declarator sites.
func (p *parser) parseType() (TypeRef, error) {
	t := p.cur()
	if !p.isTypeName(t) {
		return TypeRef{}, p.errf("expected type, found %s", t)
	}
	p.next()
	tr := TypeRef{Name: t.text, ArrayLen: -1, Line: t.line}
	for p.accept("*") {
		tr.Stars++
	}
	return tr, nil
}

func (p *parser) parseGlobalRest(ty TypeRef, name token, pm bool) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: name.text, Type: ty, PM: pm, Line: name.line}
	if p.accept("[") {
		if p.cur().kind != tokInt {
			return nil, p.errf("expected array length")
		}
		g.Type.ArrayLen = p.next().val
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		g.Init = init
	}
	return g, p.expect(";")
}

func (p *parser) parseFunc(ret TypeRef, name token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.text, Ret: ret, Line: name.line}
	p.next() // (
	for !p.accept(")") {
		if len(fn.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected parameter name, found %s", p.cur())
		}
		pname := p.next()
		fn.Params = append(fn.Params, ParamDecl{Name: pname.text, Type: ty, Line: pname.line})
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	line := p.cur().line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{Line: line}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isKw("if"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: line}
		if p.accept("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.isKw("while"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
	case p.isKw("for"):
		return p.parseFor()
	case p.isKw("switch"):
		return p.parseSwitch()
	case p.isKw("return"):
		p.next()
		st := &ReturnStmt{Line: line}
		if !p.isPunct(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = x
		}
		return st, p.expect(";")
	case p.isKw("break"):
		p.next()
		return &BreakStmt{Line: line}, p.expect(";")
	case p.isKw("continue"):
		p.next()
		return &ContinueStmt{Line: line}, p.expect(";")
	default:
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return st, p.expect(";")
	}
}

func (p *parser) parseFor() (Stmt, error) {
	line := p.cur().line
	p.next() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &ForStmt{Line: line}
	if !p.isPunct(";") {
		init, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	line := p.cur().line
	p.next() // switch
	if err := p.expect("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{X: x, Line: line}
	seenDefault := false
	for !p.accept("}") {
		switch {
		case p.isKw("case"):
			cline := p.cur().line
			p.next()
			var vals []Expr
			for {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Vals: vals, Body: body, Line: cline})
		case p.isKw("default"):
			if seenDefault {
				return nil, p.errf("duplicate default case")
			}
			seenDefault = true
			p.next()
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Default = body
		default:
			return nil, p.errf("expected 'case' or 'default', found %s", p.cur())
		}
	}
	return st, nil
}

// parseCaseBody collects statements until the next case/default label or
// the closing brace.
func (p *parser) parseCaseBody() ([]Stmt, error) {
	var body []Stmt
	for !p.isKw("case") && !p.isKw("default") && !p.isPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated switch")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return body, nil
}

// parseSimpleStmt parses a declaration, assignment, increment, or
// expression statement without consuming the terminator.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	line := p.cur().line
	// A type name followed by an identifier (or stars) begins a local
	// declaration; a bare struct-typed expression cannot start a
	// statement in pmc.
	if p.isTypeName(p.cur()) && !keywordExpr(p.cur().text) &&
		(p.peek().kind == tokIdent && !keywords[p.peek().text] || p.peek().text == "*") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected variable name, found %s", p.cur())
		}
		name := p.next()
		d := &DeclStmt{Name: name.text, Type: ty, Line: line}
		if p.accept("[") {
			if p.cur().kind != tokInt {
				return nil, p.errf("expected array length")
			}
			d.Type.ArrayLen = p.next().val
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if p.accept("=") {
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		return d, nil
	}
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.isPunct("="):
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Line: line}, nil
	case p.isCompoundAssign():
		op := p.next().text
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Op: op[:len(op)-1], Line: line}, nil
	case p.isPunct("++"), p.isPunct("--"):
		op := "+"
		if p.next().text == "--" {
			op = "-"
		}
		return &AssignStmt{LHS: lhs, RHS: &IntLit{Val: 1, Line: line}, Op: op, Line: line}, nil
	default:
		return &ExprStmt{X: lhs, Line: line}, nil
	}
}

func keywordExpr(s string) bool {
	return s == "true" || s == "false" || s == "null" || s == "sizeof"
}

func (p *parser) isCompoundAssign() bool {
	if p.cur().kind != tokPunct {
		return false
	}
	switch p.cur().text {
	case "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=":
		return true
	}
	return false
}

// Binary operator precedence, C-style (higher binds tighter).
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(0) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec <= minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.text, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
		case "(":
			// Cast: '(' typename stars ')' unary.
			if p.isCast() {
				p.next()
				to, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &CastExpr{To: to, X: x, Line: t.line}, nil
			}
		}
	}
	return p.parsePostfix()
}

// isCast looks ahead for "( typename [stars] )".
func (p *parser) isCast() bool {
	if !p.isPunct("(") {
		return false
	}
	j := p.i + 1
	if j >= len(p.toks) || !p.isTypeName(p.toks[j]) {
		return false
	}
	j++
	for j < len(p.toks) && p.toks[j].kind == tokPunct && p.toks[j].text == "*" {
		j++
	}
	return j < len(p.toks) && p.toks[j].kind == tokPunct && p.toks[j].text == ")"
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.isPunct("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, I: idx, Line: t.line}
		case p.isPunct("."):
			p.next()
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected field name, found %s", p.cur())
			}
			x = &MemberExpr{X: x, Name: p.next().text, Line: t.line}
		case p.isPunct("->"):
			p.next()
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected field name, found %s", p.cur())
			}
			x = &MemberExpr{X: x, Name: p.next().text, Arrow: true, Line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		return &IntLit{Val: t.val, Line: t.line}, nil
	case tokChar:
		p.next()
		return &IntLit{Val: t.val, Line: t.line}, nil
	case tokString:
		p.next()
		return &StrLit{Val: t.text, Line: t.line}, nil
	case tokIdent:
		switch t.text {
		case "true", "false":
			p.next()
			return &BoolLit{Val: t.text == "true", Line: t.line}, nil
		case "null":
			p.next()
			return &NullLit{Line: t.line}, nil
		case "sizeof":
			p.next()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			of, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SizeOfExpr{Of: of, Line: t.line}, nil
		}
		if keywords[t.text] {
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
		p.next()
		if p.isPunct("(") {
			p.next()
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.accept(")") {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return x, p.expect(")")
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
