package obs

import (
	"fmt"
	"strings"
)

// AuditEntry is one record of the repair audit trail: what was inserted
// (or deliberately not inserted), exactly where, and why. Together the
// entries let a reviewer trace every flush, fence, and persistent
// subprogram the fixer produced back to the detector report and the
// heuristic decision that caused it — the provenance the "do no harm"
// promise is audited against.
// The JSON encoding is part of the API contract hippocratesd serves:
// struct fields marshal in declaration order and the trail is an ordered
// slice, so the encoding is deterministic and pinned by the golden-file
// tests in internal/cli.
type AuditEntry struct {
	// Seq is assigned by the recorder in recording order.
	Seq int `json:"seq"`
	// Action is one of: insert-flush, insert-flush-range, insert-fence,
	// elide-flush, elide-fence, merge-flush, clone-subprogram,
	// reuse-subprogram, retarget-call (the fixer), or delete-flush,
	// delete-fence, coalesce-flush, sink-fence (the optimizer; see
	// internal/optimize — every candidate edit is recorded whether
	// applied or rejected, with Decision saying which).
	Action string `json:"action"`
	// Site is the exact insertion (or reuse) site as
	// file:func:block:index — index is the instruction's position within
	// its basic block at the time of the action.
	Site string `json:"site"`
	// Mechanism names what was placed: the flush flavour (clwb, ...),
	// the fence kind (sfence), or the clone's function name.
	Mechanism string `json:"mechanism,omitempty"`
	// ReportSite and ReportClass identify the originating detector
	// report (store site and bug class).
	ReportSite  string `json:"report_site,omitempty"`
	ReportClass string `json:"report_class,omitempty"`
	// Decision is the planner's placement choice: "intraprocedural",
	// "hoisted N level(s)", or "fence-only"; Why is the heuristic's
	// reasoning in prose; Score is the chosen candidate's §4.3 score.
	Decision string `json:"decision,omitempty"`
	Why      string `json:"why,omitempty"`
	Score    int    `json:"score,omitempty"`
	// HoistDepth is the call-stack distance of an interprocedural fix.
	HoistDepth int `json:"hoist_depth,omitempty"`
}

// RecordAudit appends an entry to the audit trail.
func (r *Recorder) RecordAudit(e AuditEntry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = len(r.audit) + 1
	r.audit = append(r.audit, &e)
	r.mu.Unlock()
}

// AuditTrail returns the recorded entries in order.
func (r *Recorder) AuditTrail() []*AuditEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*AuditEntry(nil), r.audit...)
}

// AuditLen returns the number of audit entries.
func (r *Recorder) AuditLen() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.audit)
}

func (e *AuditEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d] %s", e.Seq, e.Action)
	if e.Mechanism != "" {
		fmt.Fprintf(&b, " %s", e.Mechanism)
	}
	fmt.Fprintf(&b, " at %s", e.Site)
	if e.ReportSite != "" {
		fmt.Fprintf(&b, "\n    report: %s at %s", e.ReportClass, e.ReportSite)
	}
	if e.Decision != "" {
		fmt.Fprintf(&b, "\n    decision: %s (score %d)", e.Decision, e.Score)
		if e.Why != "" {
			fmt.Fprintf(&b, ": %s", e.Why)
		}
	}
	return b.String()
}

// AuditText renders the whole trail for the -audit CLI flag.
func (r *Recorder) AuditText() string {
	entries := r.AuditTrail()
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d repair decision(s)\n", len(entries))
	for _, e := range entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
