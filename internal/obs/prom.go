// Prometheus text exposition (text/plain; version=0.0.4): a small writer
// that renders metric families with HELP/TYPE headers and escaped label
// values, and a linter that re-parses an exposition and rejects the
// mistakes scrapers choke on (duplicate or invalid names, samples without
// a TYPE, interleaved families, unparsable values). hippocratesd serves
// its /metrics through the writer and `make metrics-smoke` gates the
// output through the linter, so the two halves check each other.
package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromLabel is one label pair on a sample.
type PromLabel struct {
	Name  string
	Value string
}

// PromSample is one exposition line: a label set and a value.
type PromSample struct {
	Labels []PromLabel
	Value  float64
}

// PromFamily is one metric family: name, HELP text, TYPE, and samples.
// Valid types are "counter", "gauge", "histogram", "summary", "untyped".
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// promTypes is the exposition format's TYPE vocabulary.
var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// PromName sanitizes s into a legal metric/label name: legal runes pass
// through, everything else (dots, dashes, ...) becomes '_', and a leading
// digit gets a '_' prefix. "interp.op.store" → "interp_op_store".
func PromName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// validPromName reports whether s is a legal metric name as-is.
func validPromName(s string) bool {
	return s != "" && s == PromName(s)
}

// validPromLabelName is validPromName minus the colon (reserved).
func validPromLabelName(s string) bool {
	return validPromName(s) && !strings.Contains(s, ":")
}

// WriteProm renders the families in Prometheus text format. It fails
// loudly on contract violations — invalid or duplicate family names, an
// unknown TYPE, invalid label names — so a bad exporter change breaks in
// tests instead of in the scraper.
func WriteProm(w io.Writer, fams []PromFamily) error {
	seen := make(map[string]bool, len(fams))
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if !validPromName(f.Name) {
			return fmt.Errorf("prom: invalid metric name %q", f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("prom: duplicate metric family %q", f.Name)
		}
		seen[f.Name] = true
		if !promTypes[f.Type] {
			return fmt.Errorf("prom: family %q has invalid type %q", f.Name, f.Type)
		}
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapePromHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			bw.WriteString(f.Name)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if !validPromLabelName(l.Name) {
						return fmt.Errorf("prom: family %q has invalid label name %q", f.Name, l.Name)
					}
					if i > 0 {
						bw.WriteByte(',')
					}
					fmt.Fprintf(bw, "%s=%q", l.Name, escapePromLabel(l.Value))
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatPromValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// escapePromHelp escapes HELP text (backslash and newline).
func escapePromHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapePromLabel escapes a label value for the %q quoting above: %q
// already handles quote and backslash escaping compatibly with the
// exposition format, so only literal newlines need normalizing first.
func escapePromLabel(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatPromValue renders a sample value the way scrapers expect:
// shortest round-trip float, integers without an exponent or point.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortPromSamples orders samples by their label values (then names), so
// map-derived sample sets render deterministically.
func SortPromSamples(samples []PromSample) {
	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i].Labels, samples[j].Labels
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].Name != b[k].Name {
				return a[k].Name < b[k].Name
			}
			if a[k].Value != b[k].Value {
				return a[k].Value < b[k].Value
			}
		}
		return len(a) < len(b)
	})
}

// LintProm re-parses a text exposition and returns the first defect: an
// invalid metric or label name, a sample for an undeclared family, a
// duplicate TYPE/HELP line, interleaved families, a duplicate sample
// (same name and label set), or a value that doesn't parse as a float.
// It is the `make metrics-smoke` gate over hippocratesd's /metrics.
func LintProm(data []byte) error {
	typeOf := make(map[string]string) // family → TYPE
	helpSeen := make(map[string]bool)
	sampleSeen := make(map[string]bool) // name+labels → true
	closed := make(map[string]bool)     // family → samples ended
	lastFamily := ""
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validPromName(name) {
				return fmt.Errorf("prom lint: line %d: invalid metric name %q", lineNo, name)
			}
			switch fields[1] {
			case "HELP":
				if helpSeen[name] {
					return fmt.Errorf("prom lint: line %d: duplicate HELP for %q", lineNo, name)
				}
				helpSeen[name] = true
			case "TYPE":
				if _, dup := typeOf[name]; dup {
					return fmt.Errorf("prom lint: line %d: duplicate TYPE for %q", lineNo, name)
				}
				if len(fields) < 4 || !promTypes[fields[3]] {
					return fmt.Errorf("prom lint: line %d: invalid TYPE line %q", lineNo, line)
				}
				if closed[name] {
					return fmt.Errorf("prom lint: line %d: TYPE for %q after its samples", lineNo, name)
				}
				typeOf[name] = fields[3]
			}
			continue
		}

		name, labels, value, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("prom lint: line %d: %v", lineNo, err)
		}
		fam := sampleFamily(name, typeOf)
		if fam == "" {
			return fmt.Errorf("prom lint: line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if fam != lastFamily {
			if lastFamily != "" {
				closed[lastFamily] = true
			}
			if closed[fam] {
				return fmt.Errorf("prom lint: line %d: family %q interleaved with other families", lineNo, fam)
			}
			lastFamily = fam
		}
		key := name + "{" + labels + "}"
		if sampleSeen[key] {
			return fmt.Errorf("prom lint: line %d: duplicate sample %s", lineNo, key)
		}
		sampleSeen[key] = true
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("prom lint: line %d: bad value %q for %q", lineNo, value, name)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("prom lint: %v", err)
	}
	return nil
}

// sampleFamily resolves a sample name to its declared family: exact
// match, or the base name of a histogram/summary's _sum/_count/_bucket
// series.
func sampleFamily(name string, typeOf map[string]string) string {
	if _, ok := typeOf[name]; ok {
		return name
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := typeOf[base]; ok && (t == "histogram" || t == "summary") {
			if suffix != "_bucket" || t == "histogram" {
				return base
			}
		}
	}
	return ""
}

// splitPromSample tears one sample line into name, raw label block, and
// value, validating name and label syntax along the way.
func splitPromSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		if err := lintPromLabels(labels); err != nil {
			return "", "", "", err
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validPromName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	// A trailing timestamp is legal; the value is the first field.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "", fmt.Errorf("sample %q has no value", line)
	}
	return name, labels, fields[0], nil
}

// lintPromLabels validates a raw label block: comma-separated
// name="value" pairs with legal names and closed quotes.
func lintPromLabels(block string) error {
	rest := block
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label block %q", block)
		}
		lname := strings.TrimSpace(rest[:eq])
		if !validPromLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %q value is not quoted", lname)
		}
		// Scan the quoted value, honoring backslash escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("label %q value is unterminated", lname)
		}
		rest = rest[i+1:]
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("malformed label block %q", block)
			}
			rest = rest[1:]
		}
	}
	return nil
}
