package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Windowed deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestWindowed(res time.Duration, slots int) (*Windowed, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	w := NewWindowed(res, slots)
	w.now = clk.now
	return w, clk
}

// TestWindowedRollsOff: observations expire once the window slides past
// them, while a longer window still sees them until the ring itself
// recycles the slot.
func TestWindowedRollsOff(t *testing.T) {
	w, clk := newTestWindowed(time.Second, 10)
	if got := w.Span(); got != 10*time.Second {
		t.Fatalf("Span = %v, want 10s", got)
	}

	w.Observe(100)
	clk.advance(2 * time.Second)
	w.Observe(200)

	short := w.Snapshot(1 * time.Second)
	if short.Count != 1 || short.Max != 200 {
		t.Errorf("1s snapshot = %+v, want only the fresh sample", short)
	}
	long := w.Snapshot(5 * time.Second)
	if long.Count != 2 || long.Sum != 300 || long.Min != 100 || long.Max != 200 {
		t.Errorf("5s snapshot = %+v, want both samples", long)
	}

	// Slide far enough that the first sample ages out of a 5s window.
	clk.advance(4 * time.Second)
	aged := w.Snapshot(5 * time.Second)
	if aged.Count != 1 || aged.Max != 200 {
		t.Errorf("aged 5s snapshot = %+v, want only the second sample", aged)
	}

	// Slide past the whole ring: everything is gone, even at max window.
	clk.advance(20 * time.Second)
	if got := w.Snapshot(time.Hour); got.Count != 0 {
		t.Errorf("post-ring snapshot = %+v, want empty", got)
	}
}

// TestWindowedSlotReuse: a ring position holding an expired slot is reset
// when reused, so stale observations cannot leak into a new slot's data.
func TestWindowedSlotReuse(t *testing.T) {
	w, clk := newTestWindowed(time.Second, 4)
	w.Observe(1)
	w.Observe(1)
	// 4 slots of 1s: advancing 4s lands on the same ring position.
	clk.advance(4 * time.Second)
	w.Observe(9)
	got := w.Snapshot(w.Span())
	if got.Count != 1 || got.Sum != 9 {
		t.Errorf("reused slot kept stale data: %+v", got)
	}
}

// TestWindowedClampAndEmpty: tiny and huge windows clamp to [1 slot,
// ring span]; empty and nil receivers return an empty histogram.
func TestWindowedClampAndEmpty(t *testing.T) {
	w, _ := newTestWindowed(time.Second, 4)
	if got := w.Snapshot(0); got == nil || got.Count != 0 {
		t.Errorf("empty snapshot = %+v", got)
	}
	w.Observe(5)
	if got := w.Snapshot(0); got.Count != 1 {
		t.Errorf("zero-window snapshot must still include the current slot: %+v", got)
	}
	if got := w.Snapshot(time.Hour); got.Count != 1 {
		t.Errorf("huge window clamps to ring span: %+v", got)
	}
	var nilW *Windowed
	nilW.Observe(1) // no-op, must not panic
	if got := nilW.Snapshot(time.Minute); got == nil || got.Count != 0 {
		t.Errorf("nil Windowed snapshot = %+v", got)
	}
}

// TestWindowedConcurrent hammers one Windowed from many goroutines while
// snapshots run — the -race proof that the ring is contention-safe.
func TestWindowedConcurrent(t *testing.T) {
	w := NewWindowed(10*time.Millisecond, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Observe(int64(i))
			}
		}()
	}
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				w.Snapshot(time.Minute)
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
}
