package obs

import (
	"bytes"
	"strings"
	"testing"
)

func renderProm(t *testing.T, fams []PromFamily) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProm(&buf, fams); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	return buf.Bytes()
}

// TestWritePromFormat pins the exposition grammar the writer emits:
// HELP/TYPE headers, label quoting and escaping, shortest-float values.
func TestWritePromFormat(t *testing.T) {
	out := renderProm(t, []PromFamily{
		{
			Name: "d_up", Help: "is it up\nreally", Type: "gauge",
			Samples: []PromSample{{Value: 1}},
		},
		{
			Name: "d_jobs_total", Help: "jobs", Type: "counter",
			Samples: []PromSample{
				{Labels: []PromLabel{{"outcome", "done"}}, Value: 3},
				{Labels: []PromLabel{{"outcome", `we"ird\one`}}, Value: 0.25},
			},
		},
	})
	want := `# HELP d_up is it up\nreally
# TYPE d_up gauge
d_up 1
# HELP d_jobs_total jobs
# TYPE d_jobs_total counter
d_jobs_total{outcome="done"} 3
d_jobs_total{outcome="we\"ird\\one"} 0.25
`
	if string(out) != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
	if err := LintProm(out); err != nil {
		t.Errorf("writer output fails its own linter: %v", err)
	}
}

// TestWritePromRejects: the writer refuses contract violations instead of
// emitting an exposition a scraper would drop.
func TestWritePromRejects(t *testing.T) {
	cases := map[string][]PromFamily{
		"invalid name": {{Name: "bad.dots", Type: "gauge"}},
		"empty name":   {{Name: "", Type: "gauge"}},
		"dup family":   {{Name: "a", Type: "gauge"}, {Name: "a", Type: "gauge"}},
		"bad type":     {{Name: "a", Type: "distribution"}},
		"bad label": {{Name: "a", Type: "gauge",
			Samples: []PromSample{{Labels: []PromLabel{{"bad-label", "x"}}, Value: 1}}}},
		"colon label": {{Name: "a", Type: "gauge",
			Samples: []PromSample{{Labels: []PromLabel{{"a:b", "x"}}, Value: 1}}}},
	}
	for name, fams := range cases {
		var buf bytes.Buffer
		if err := WriteProm(&buf, fams); err == nil {
			t.Errorf("%s: WriteProm accepted %+v", name, fams)
		}
	}
}

// TestLintPromCatches feeds the linter the classic exposition defects.
func TestLintPromCatches(t *testing.T) {
	good := `# HELP x_total things
# TYPE x_total counter
x_total{k="v"} 1
x_total{k="w"} 2
# TYPE y gauge
y 0.5
# TYPE h histogram
h_bucket{le="1"} 3
h_sum 4
h_count 3
`
	if err := LintProm([]byte(good)); err != nil {
		t.Fatalf("linter rejected a valid exposition: %v", err)
	}

	bad := map[string]string{
		"no TYPE":          "x 1\n",
		"dup TYPE":         "# TYPE x gauge\n# TYPE x gauge\nx 1\n",
		"dup HELP":         "# HELP x a\n# HELP x b\n# TYPE x gauge\nx 1\n",
		"bad TYPE":         "# TYPE x dist\nx 1\n",
		"TYPE after use":   "# TYPE x gauge\nx 1\n# TYPE y gauge\ny 1\n# TYPE x2 gauge\nx 2\n",
		"dup sample":       "# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n",
		"bad value":        "# TYPE x gauge\nx one\n",
		"bad metric name":  "# TYPE x gauge\nx 1\n# TYPE b.d gauge\n",
		"bad label name":   "# TYPE x gauge\nx{bad-l=\"1\"} 1\n",
		"unquoted label":   "# TYPE x gauge\nx{a=1} 1\n",
		"unbalanced brace": "# TYPE x gauge\nx{a=\"1\" 1\n",
		"interleaved":      "# TYPE x gauge\n# TYPE y gauge\nx 1\ny 1\nx{k=\"2\"} 2\n",
		"bucket on gauge":  "# TYPE x gauge\nx_bucket{le=\"1\"} 1\n",
	}
	for name, doc := range bad {
		if err := LintProm([]byte(doc)); err == nil {
			t.Errorf("%s: linter accepted:\n%s", name, doc)
		}
	}

	// Special float values and trailing timestamps are legal.
	legal := "# TYPE x gauge\nx{a=\"1\"} +Inf\nx{a=\"2\"} NaN 1700000000\n"
	if err := LintProm([]byte(legal)); err != nil {
		t.Errorf("linter rejected special values/timestamps: %v", err)
	}
}

// TestPromName pins the sanitizer.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"interp.op.store": "interp_op_store",
		"server.job.ns":   "server_job_ns",
		"ok_name:sub":     "ok_name:sub",
		"9lives":          "_9lives",
		"":                "_",
		"a b-c":           "a_b_c",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSortPromSamples: map-derived samples render deterministically.
func TestSortPromSamples(t *testing.T) {
	s := []PromSample{
		{Labels: []PromLabel{{"shard", "2"}}, Value: 1},
		{Labels: []PromLabel{{"shard", "0"}}, Value: 1},
		{Labels: []PromLabel{{"shard", "1"}}, Value: 1},
	}
	SortPromSamples(s)
	var order []string
	for _, x := range s {
		order = append(order, x.Labels[0].Value)
	}
	if strings.Join(order, ",") != "0,1,2" {
		t.Errorf("sorted order %v", order)
	}
}
