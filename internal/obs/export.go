package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// metricsDoc is the -metrics JSON shape; schema/metrics.schema.json is
// the checked-in contract `make metrics-smoke` validates against.
type metricsDoc struct {
	Counters     map[string]int64        `json:"counters"`
	Gauges       map[string]int64        `json:"gauges"`
	Histograms   map[string]histogramDoc `json:"histograms"`
	OpcodesTop10 []opcodeDoc             `json:"opcodes_top10"`
	Phases       []phaseDoc              `json:"phases"`
	AuditEntries int                     `json:"audit_entries"`
}

type histogramDoc struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets"`
}

type opcodeDoc struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
}

type phaseDoc struct {
	Name       string `json:"name"`
	Spans      int    `json:"spans"`
	TotalNS    int64  `json:"total_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// OpcodeCounterPrefix namespaces the interpreter's per-opcode execution
// counters; the metrics export derives its top-10 table from it.
const OpcodeCounterPrefix = "interp.op."

// MetricsJSON renders the counters, histograms, opcode top-10, phase
// totals, and audit-trail size as indented JSON.
func (r *Recorder) MetricsJSON() ([]byte, error) {
	doc := metricsDoc{
		Counters:     map[string]int64{},
		Gauges:       map[string]int64{},
		Histograms:   map[string]histogramDoc{},
		OpcodesTop10: []opcodeDoc{},
		Phases:       []phaseDoc{},
	}
	if r != nil {
		doc.Counters = r.Counters()
		doc.Gauges = r.Gauges()
		for name, h := range r.Histograms() {
			hd := histogramDoc{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max, Buckets: map[string]int64{}}
			keys := make([]int, 0, len(h.Buckets))
			for k := range h.Buckets {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				hd.Buckets[fmt.Sprintf("le_%d", BucketBound(k))] = h.Buckets[k]
			}
			doc.Histograms[name] = hd
		}
		for _, nc := range r.TopCounters(OpcodeCounterPrefix, 10) {
			doc.OpcodesTop10 = append(doc.OpcodesTop10, opcodeDoc{Op: nc.Name, Count: nc.Count})
		}
		for _, pt := range r.PhaseTotals() {
			doc.Phases = append(doc.Phases, phaseDoc{
				Name: pt.Name, Spans: pt.Spans, TotalNS: pt.Total.Nanoseconds(), AllocBytes: pt.Alloc,
			})
		}
		doc.AuditEntries = r.AuditLen()
	}
	return json.MarshalIndent(doc, "", "  ")
}

// spansDoc is the plain-JSON span export (ids, parents, wall times).
type spansDoc struct {
	Spans []spanDoc `json:"spans"`
}

type spanDoc struct {
	ID         int               `json:"id"`
	Parent     int               `json:"parent"`
	Name       string            `json:"name"`
	StartNS    int64             `json:"start_ns"`
	DurNS      int64             `json:"dur_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	AllocBytes uint64            `json:"alloc_bytes,omitempty"`
}

// SpansJSON renders the span list as plain JSON (ids and parent links).
func (r *Recorder) SpansJSON() ([]byte, error) {
	doc := spansDoc{Spans: []spanDoc{}}
	for _, s := range r.Spans() {
		doc.Spans = append(doc.Spans, spanDoc{
			ID: s.ID, Parent: s.Parent, Name: s.Name,
			StartNS: s.Begin.Nanoseconds(), DurNS: s.Dur.Nanoseconds(),
			Attrs: s.Attrs, AllocBytes: s.AllocBytes,
		})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// chromeTraceDoc is the self-contained Chrome trace_event file the -spans
// flag emits: load it in chrome://tracing or https://ui.perfetto.dev.
// Every span becomes a complete ("X") event; each span tree gets its own
// thread lane (tid = the tree's root span id) so concurrent pipelines
// render side by side and children nest inside their parents.
type chromeTraceDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTraceJSON renders the spans in Chrome trace_event format.
func (r *Recorder) ChromeTraceJSON() ([]byte, error) {
	spans := r.Spans()
	// Resolve each span's tree root for lane assignment.
	rootOf := make([]int, len(spans))
	for _, s := range spans {
		if s.Parent < 0 {
			rootOf[s.ID] = s.ID
		} else {
			rootOf[s.ID] = rootOf[s.Parent]
		}
	}
	doc := chromeTraceDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, s := range spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.Begin.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  rootOf[s.ID],
			Args: s.Attrs,
		})
	}
	return json.MarshalIndent(doc, "", " ")
}

// WriteMetricsFile writes the metrics JSON to path.
func (r *Recorder) WriteMetricsFile(path string) error {
	data, err := r.MetricsJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// WriteChromeTraceFile writes the Chrome trace_event JSON to path.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	data, err := r.ChromeTraceJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
