package obs

import (
	"sync"
	"time"
)

// Windowed is a rolling-window histogram: observations land in a ring of
// fixed-duration slots, and Snapshot folds the slots covering a trailing
// window into one Histogram. hippocratesd keeps one per pipeline phase so
// /metrics can serve "p99 over the last minute" instead of "p99 since
// boot" — a scrape-friendly signal that decays when traffic stops.
//
// A slot that falls out of the ring is lazily reset the next time its
// position is reused, so an idle Windowed costs nothing. All methods are
// safe for concurrent use; a nil *Windowed is a valid no-op, matching the
// package's nil-Recorder convention.
type Windowed struct {
	mu    sync.Mutex
	res   time.Duration
	slots []windowSlot
	now   func() time.Time // injectable for tests
}

// windowSlot is one ring position: the slot index it currently holds
// (unix-nanos / resolution; -1 = never used) and that slot's histogram.
type windowSlot struct {
	idx  int64
	hist Histogram
}

// NewWindowed returns a rolling histogram of `slots` ring positions, each
// covering `res` of wall time — the ring spans res*slots. Defaults: 5s
// resolution, 60 slots (a 5-minute span).
func NewWindowed(res time.Duration, slots int) *Windowed {
	if res <= 0 {
		res = 5 * time.Second
	}
	if slots <= 0 {
		slots = 60
	}
	w := &Windowed{res: res, slots: make([]windowSlot, slots), now: time.Now}
	for i := range w.slots {
		w.slots[i].idx = -1
	}
	return w
}

// Span returns the total wall time the ring covers.
func (w *Windowed) Span() time.Duration {
	if w == nil {
		return 0
	}
	return w.res * time.Duration(len(w.slots))
}

// Observe records v into the current slot, resetting the ring position if
// it still holds an expired slot.
func (w *Windowed) Observe(v int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	idx := w.now().UnixNano() / int64(w.res)
	s := &w.slots[idx%int64(len(w.slots))]
	if s.idx != idx {
		s.idx = idx
		s.hist = Histogram{}
	}
	s.hist.observe(v)
	w.mu.Unlock()
}

// Snapshot folds every live slot of the trailing window into one
// Histogram copy. The window is rounded up to whole slots and clamped to
// the ring's span; the current (partial) slot is always included. An
// empty window returns an empty histogram, never nil.
func (w *Windowed) Snapshot(window time.Duration) *Histogram {
	out := &Histogram{}
	if w == nil {
		return out
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	nowIdx := w.now().UnixNano() / int64(w.res)
	n := int64((window + w.res - 1) / w.res)
	if n < 1 {
		n = 1
	}
	if max := int64(len(w.slots)); n > max {
		n = max
	}
	for i := range w.slots {
		s := &w.slots[i]
		// Live = written for a slot index inside (nowIdx-n, nowIdx].
		if s.idx < 0 || s.idx > nowIdx || s.idx <= nowIdx-n {
			continue
		}
		out.merge(&s.hist)
	}
	return out
}
