package obs

import (
	"fmt"
	"sort"
	"sync"
)

// PromVec is a concurrency-safe labeled sample set that renders as one
// Prometheus family: a fixed label-name schema declared up front, one
// float64 cell per distinct label-value tuple. It is the primitive the
// fleet router's per-backend metrics are built on (requests by backend
// and outcome, retries by backend and reason, breaker state by backend)
// — callers mutate cells from request goroutines, the exporter snapshots
// a deterministic, sorted PromFamily.
//
// Counter-style vecs use Add, gauge-style vecs use Set; the Type field
// given at construction decides how the family is declared. Label-value
// tuples are keyed by their joined values, so the arity is enforced: a
// mismatched Add/Set panics, the same contract WriteProm applies to
// names.
type PromVec struct {
	name   string
	help   string
	typ    string
	labels []string

	mu    sync.Mutex
	cells map[string]*promCell
}

type promCell struct {
	values []string
	v      float64
}

// NewPromVec declares a labeled family. Valid types are the WriteProm
// vocabulary; the writer re-validates at render time, so a typo fails in
// tests, not in the scraper.
func NewPromVec(name, help, typ string, labelNames ...string) *PromVec {
	return &PromVec{
		name:   name,
		help:   help,
		typ:    typ,
		labels: labelNames,
		cells:  make(map[string]*promCell),
	}
}

// key joins a label-value tuple; \xff never appears in sane label values
// and keeps ("a","bc") distinct from ("ab","c").
func (v *PromVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label value(s), got %d", v.name, len(v.labels), len(values)))
	}
	out := ""
	for i, s := range values {
		if i > 0 {
			out += "\xff"
		}
		out += s
	}
	return out
}

func (v *PromVec) cell(values []string) *promCell {
	k := v.key(values)
	c := v.cells[k]
	if c == nil {
		c = &promCell{values: append([]string(nil), values...)}
		v.cells[k] = c
	}
	return c
}

// Add increments the cell for the label-value tuple (counter idiom).
func (v *PromVec) Add(delta float64, labelValues ...string) {
	v.mu.Lock()
	v.cell(labelValues).v += delta
	v.mu.Unlock()
}

// Set overwrites the cell for the label-value tuple (gauge idiom).
func (v *PromVec) Set(val float64, labelValues ...string) {
	v.mu.Lock()
	v.cell(labelValues).v = val
	v.mu.Unlock()
}

// Get returns the cell's current value (0 if the tuple was never touched).
func (v *PromVec) Get(labelValues ...string) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.cells[v.key(labelValues)]; c != nil {
		return c.v
	}
	return 0
}

// Total sums every cell — the unlabeled aggregate of a counter vec.
func (v *PromVec) Total() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := 0.0
	for _, c := range v.cells {
		t += c.v
	}
	return t
}

// Family snapshots the vec as a render-ready PromFamily with samples
// sorted by label values, so equal states render byte-identically.
func (v *PromVec) Family() PromFamily {
	v.mu.Lock()
	keys := make([]string, 0, len(v.cells))
	for k := range v.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := PromFamily{Name: v.name, Help: v.help, Type: v.typ}
	for _, k := range keys {
		c := v.cells[k]
		s := PromSample{Value: c.v}
		for i, name := range v.labels {
			s.Labels = append(s.Labels, PromLabel{Name: name, Value: c.values[i]})
		}
		f.Samples = append(f.Samples, s)
	}
	v.mu.Unlock()
	return f
}
