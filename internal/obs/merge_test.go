package obs

import "testing"

// TestQuantileEdgeCases pins Histogram.Quantile where estimation gets no
// slack: empty and single-sample histograms, and the q=0 / q=1 extremes,
// which must be exact (the observed Min and Max).
func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram: Quantile(0.5) = %d, want 0", got)
	}
	empty := &Histogram{}
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty histogram: Quantile(%v) = %d, want 0", q, got)
		}
	}

	single := &Histogram{}
	single.observe(37)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != 37 {
			t.Errorf("single sample: Quantile(%v) = %d, want 37", q, got)
		}
	}

	h := &Histogram{}
	for _, v := range []int64{3, 5, 900, 17, 1} {
		h.observe(v)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want observed min 1", got)
	}
	if got := h.Quantile(1); got != 900 {
		t.Errorf("Quantile(1) = %d, want observed max 900", got)
	}
	// Out-of-range q clamps to the extremes instead of misindexing.
	if got := h.Quantile(-3); got != 1 {
		t.Errorf("Quantile(-3) = %d, want 1", got)
	}
	if got := h.Quantile(42); got != 900 {
		t.Errorf("Quantile(42) = %d, want 900", got)
	}
	// Interior quantiles stay within the bucket's factor-of-two bound.
	if got := h.Quantile(0.5); got < 5 || got > 9 {
		t.Errorf("Quantile(0.5) = %d, want within [5,9] (bucket bound of 5)", got)
	}

	// Negative observations land in bucket 0 whose bound clamps to Min.
	neg := &Histogram{}
	neg.observe(-10)
	neg.observe(4)
	if got := neg.Quantile(0); got != -10 {
		t.Errorf("Quantile(0) with negatives = %d, want -10", got)
	}
}

// TestGaugeSetAndRead covers the gauge primitive, including the nil
// recorder no-op.
func TestGaugeSetAndRead(t *testing.T) {
	var nilRec *Recorder
	nilRec.SetGauge("g", 5) // must not panic
	if _, ok := nilRec.Gauge("g"); ok {
		t.Error("nil recorder claims a gauge")
	}
	if nilRec.Gauges() != nil {
		t.Error("nil recorder returned a gauge map")
	}

	r := New()
	if _, ok := r.Gauge("depth"); ok {
		t.Error("unset gauge reported as present")
	}
	r.SetGauge("depth", 7)
	r.SetGauge("depth", 3) // levels overwrite, never accumulate
	if v, ok := r.Gauge("depth"); !ok || v != 3 {
		t.Errorf("gauge = %d,%v, want 3,true", v, ok)
	}
	if got := r.Gauges()["depth"]; got != 3 {
		t.Errorf("Gauges() = %d, want 3", got)
	}
}

// TestMergeSemantics pins Merge's per-kind contract: counters SUM,
// gauges are LAST-WRITE-WINS (the source overwrites), histograms fold.
func TestMergeSemantics(t *testing.T) {
	dst := New()
	dst.Add("jobs", 2)
	dst.SetGauge("depth", 9)
	dst.SetGauge("only_dst", 1)
	dst.Observe("lat", 10)

	src := New()
	src.Add("jobs", 3)
	src.SetGauge("depth", 4)
	src.SetGauge("only_src", 8)
	src.Observe("lat", 1000)

	dst.Merge(src)

	if got := dst.Counter("jobs"); got != 5 {
		t.Errorf("counter merged to %d, want sum 5", got)
	}
	if v, _ := dst.Gauge("depth"); v != 4 {
		t.Errorf("gauge merged to %d, want last-write 4 (not 13)", v)
	}
	if v, _ := dst.Gauge("only_dst"); v != 1 {
		t.Errorf("gauge absent from src was clobbered: %d", v)
	}
	if v, ok := dst.Gauge("only_src"); !ok || v != 8 {
		t.Errorf("gauge new in src = %d,%v, want 8,true", v, ok)
	}
	h := dst.Histograms()["lat"]
	if h.Count != 2 || h.Sum != 1010 || h.Min != 10 || h.Max != 1000 {
		t.Errorf("histogram merged to %+v", h)
	}

	// Merging again re-applies: counters keep summing, gauges stay at the
	// source's level — the asymmetry that makes the semantics explicit.
	dst.Merge(src)
	if got := dst.Counter("jobs"); got != 8 {
		t.Errorf("second merge: counter = %d, want 8", got)
	}
	if v, _ := dst.Gauge("depth"); v != 4 {
		t.Errorf("second merge: gauge = %d, want 4", v)
	}

	// An empty source histogram must not disturb the destination's Min.
	src2 := New()
	src2.Observe("other", 1)
	dst.Merge(src2)
	if h := dst.Histograms()["lat"]; h.Min != 10 {
		t.Errorf("empty-histogram merge disturbed Min: %+v", h)
	}
}

// TestMergedGaugesExport: gauges survive the merge into the -metrics JSON
// export (the path hippocratesd's aggregate recorder takes).
func TestMergedGaugesExport(t *testing.T) {
	agg := New()
	job := New()
	job.SetGauge("job.queue_wait_ns", 123)
	agg.Merge(job)
	data, err := agg.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(data); err != nil {
		t.Fatalf("metrics with gauges violate schema: %v", err)
	}
}
