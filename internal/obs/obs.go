// Package obs is the pipeline's telemetry subsystem: hierarchical spans
// over the repair phases (parse → lower → trace → detect → plan → apply →
// revalidate), named counters and power-of-two histograms, and the repair
// audit trail that maps every inserted flush, fence, and persistent
// subprogram back to the report and heuristic decision that produced it.
//
// The package has no dependencies beyond the standard library and — by
// design — imports nothing else from this module, so every layer (lang,
// interp, pmcheck, static, core, bench, the commands) can record into it.
//
// Everything hangs off a *Recorder. A nil *Recorder (and the nil *Span it
// hands out) is the no-op default: every method nil-checks its receiver
// and returns immediately, so an uninstrumented run pays one pointer
// comparison per telemetry point and allocates nothing. Hot loops (the
// interpreter dispatch) never call into obs at all; they keep plain
// integer counters and flush them into a span once per run.
//
// Span parenting is explicit — a child is created with (*Span).Start, not
// from goroutine-local state — so concurrent pipelines recording into one
// Recorder can never interleave parents across goroutines: a span's
// ancestry is fixed by the code path that created it.
package obs

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Recorder collects spans, counters, histograms, and audit entries for
// one tool invocation. The zero value is not usable; call New. A nil
// *Recorder is valid everywhere and records nothing.
type Recorder struct {
	mu       sync.Mutex
	epoch    time.Time
	spans    []*Span
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Histogram
	audit    []*AuditEntry
	allocs   bool
}

// New returns an empty, enabled recorder.
func New() *Recorder {
	return &Recorder{
		epoch:    time.Now(),
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the recorder actually records.
func (r *Recorder) Enabled() bool { return r != nil }

// SetTrackAllocs enables per-span allocation deltas via
// runtime.ReadMemStats. ReadMemStats is process-global and far from free,
// so this is off by default and only sensible for the handful of
// phase-level spans a CLI run creates; with concurrent pipelines the
// deltas include the other goroutines' allocations and are approximate.
func (r *Recorder) SetTrackAllocs(on bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.allocs = on
	r.mu.Unlock()
}

// Span is one timed region of the pipeline. Fields are written while the
// recorder lock is held; read them only after the span (and any
// concurrent recording) has finished, e.g. via (*Recorder).Spans.
type Span struct {
	rec *Recorder

	// ID is the span's index in creation order; Parent is the parent
	// span's ID, or -1 for a root.
	ID     int
	Parent int
	Name   string
	// Begin is the offset from the recorder's epoch; Dur is filled by End.
	Begin time.Duration
	Dur   time.Duration
	// Attrs are optional string annotations (entry function, file, ...).
	Attrs map[string]string
	// AllocBytes is the runtime.MemStats.TotalAlloc delta over the span
	// when SetTrackAllocs(true) was called before the span started.
	AllocBytes uint64

	allocStart uint64
	ended      bool
}

// StartSpan opens a root span.
func (r *Recorder) StartSpan(name string) *Span {
	return r.newSpan(name, -1)
}

// Start opens a child span. It is valid on a nil span (returns nil).
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.newSpan(name, s.ID)
}

func (r *Recorder) newSpan(name string, parent int) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := &Span{
		rec:    r,
		ID:     len(r.spans),
		Parent: parent,
		Name:   name,
		Begin:  time.Since(r.epoch),
	}
	if r.allocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.allocStart = ms.TotalAlloc
	}
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// End closes the span, fixing its duration (and allocation delta when
// tracking is on). A second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	r.mu.Lock()
	if !s.ended {
		s.ended = true
		s.Dur = time.Since(r.epoch) - s.Begin
		if r.allocs {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.TotalAlloc >= s.allocStart {
				s.AllocBytes = ms.TotalAlloc - s.allocStart
			}
		}
	}
	r.mu.Unlock()
}

// SetAttr attaches a string annotation to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
	s.rec.mu.Unlock()
}

// Recorder returns the span's recorder (nil for a nil span).
func (s *Span) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Add increments a named counter (delegating to the recorder).
func (s *Span) Add(name string, delta int64) { s.Recorder().Add(name, delta) }

// Observe records a value into a named histogram (delegating).
func (s *Span) Observe(name string, v int64) { s.Recorder().Observe(name, v) }

// Audit appends an audit entry (delegating to the recorder).
func (s *Span) Audit(e AuditEntry) { s.Recorder().RecordAudit(e) }

// Add increments a named counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns a counter's current value.
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge records a point-in-time level (queue depth, bytes in use,
// jobs in flight). Unlike a counter, a gauge is not additive: Merge
// overwrites the destination's gauge with the source's (last write wins),
// because a level sampled later supersedes one sampled earlier.
func (r *Recorder) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.gauges == nil {
		r.gauges = make(map[string]int64)
	}
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge returns a gauge's current level and whether it was ever set.
func (r *Recorder) Gauge(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// Gauges returns a copy of all gauges.
func (r *Recorder) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Counters returns a copy of all counters.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Spans returns the recorded spans in creation order. Call only after
// recording has quiesced; the returned spans are the live objects.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.spans...)
}

// Histogram aggregates int64 observations into power-of-two buckets:
// bucket k counts values v with 2^(k-1) <= v < 2^k (bucket 0 counts
// v <= 0 and v == 1 lands in bucket 1). Sparse representation: only
// non-empty buckets are stored.
type Histogram struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets map[int]int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the inclusive upper bound of bucket k.
func BucketBound(k int) int64 {
	if k <= 0 {
		return 0
	}
	return (int64(1) << k) - 1
}

func (h *Histogram) observe(v int64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	if h.Buckets == nil {
		h.Buckets = make(map[int]int64)
	}
	h.Buckets[bucketOf(v)]++
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observations
// from the power-of-two buckets: it returns the inclusive upper bound of
// the bucket the quantile rank falls in, clamped to the observed Min/Max.
// The estimate is exact at the extremes and within the bucket's factor of
// two elsewhere — good enough for the latency percentiles /metrics serves.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	// The extremes are exact by definition — and bucket 0's bound (0)
	// would otherwise overstate a negative Min.
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := int64(q * float64(h.Count-1)) // 0-based rank of the quantile
	keys := make([]int, 0, len(h.Buckets))
	for k := range h.Buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var cum int64
	for _, k := range keys {
		cum += h.Buckets[k]
		if cum > rank {
			b := BucketBound(k)
			if b > h.Max {
				b = h.Max
			}
			if b < h.Min {
				b = h.Min
			}
			return b
		}
	}
	return h.Max
}

// Observe records a value into the named histogram.
func (r *Recorder) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Merge folds src's counters, gauges, and histograms into r.
// hippocratesd gives every job a private recorder (so span trees and
// audit trails stay per-job) and merges each finished job into one
// long-lived recorder for the /metrics aggregate. The per-kind semantics
// are deliberate and pinned by tests:
//
//   - counters SUM: they count events, and events accumulate;
//   - gauges are LAST-WRITE-WINS: they sample levels, and the source's
//     level (sampled later, at merge time) supersedes the destination's;
//   - histograms fold bucket-wise (counts/sums add, min/max widen).
//
// Spans and audit entries are deliberately not merged: they belong to
// the per-job recorder, whose IDs and Seq numbers would collide under
// concatenation.
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	for k, v := range src.Counters() {
		r.Add(k, v)
	}
	for k, v := range src.Gauges() {
		r.SetGauge(k, v)
	}
	for name, h := range src.Histograms() {
		r.mergeHistogram(name, h)
	}
}

func (r *Recorder) mergeHistogram(name string, src *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.merge(src)
}

// merge folds src into h: counts and sums add, min/max widen, buckets
// add pairwise. An empty src is a no-op (its zero Min/Max carry no
// information).
func (h *Histogram) merge(src *Histogram) {
	if src == nil || src.Count == 0 {
		return
	}
	if h.Count == 0 || src.Min < h.Min {
		h.Min = src.Min
	}
	if h.Count == 0 || src.Max > h.Max {
		h.Max = src.Max
	}
	h.Count += src.Count
	h.Sum += src.Sum
	if h.Buckets == nil {
		h.Buckets = make(map[int]int64, len(src.Buckets))
	}
	for k, n := range src.Buckets {
		h.Buckets[k] += n
	}
}

// Histograms returns a deep copy of all histograms.
func (r *Recorder) Histograms() map[string]*Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		cp := *h
		cp.Buckets = make(map[int]int64, len(h.Buckets))
		for b, n := range h.Buckets {
			cp.Buckets[b] = n
		}
		out[k] = &cp
	}
	return out
}

// PhaseTotal is the aggregate of all spans sharing one name.
type PhaseTotal struct {
	Name  string
	Spans int
	Total time.Duration
	Alloc uint64
}

// PhaseTotals folds the spans into per-name totals, ordered by each
// name's first appearance — the phase-level timing breakdown the paper's
// evaluation reports (its Fig. 9).
func (r *Recorder) PhaseTotals() []PhaseTotal {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make(map[string]int)
	var out []PhaseTotal
	for _, s := range r.spans {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, PhaseTotal{Name: s.Name})
		}
		out[i].Spans++
		out[i].Total += s.Dur
		out[i].Alloc += s.AllocBytes
	}
	return out
}

// TopCounters returns the n largest counters whose name starts with
// prefix, as (suffix, value) pairs sorted by descending value then name —
// used for the top-10 opcode table in the metrics export.
func (r *Recorder) TopCounters(prefix string, n int) []NamedCount {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var all []NamedCount
	for k, v := range r.counters {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			all = append(all, NamedCount{Name: k[len(prefix):], Count: v})
		}
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Name < all[j].Name
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// NamedCount is one (name, count) pair.
type NamedCount struct {
	Name  string
	Count int64
}
