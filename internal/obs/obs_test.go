package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	sp := r.StartSpan("root")
	if sp != nil {
		t.Fatal("nil recorder returned a span")
	}
	// Every nil-span operation must be safe.
	child := sp.Start("child")
	child.SetAttr("k", "v")
	child.Add("c", 1)
	child.Observe("h", 42)
	child.Audit(AuditEntry{Action: "insert-flush"})
	child.End()
	sp.End()
	r.Add("c", 1)
	r.Observe("h", 1)
	r.RecordAudit(AuditEntry{})
	r.SetTrackAllocs(true)
	if r.Counter("c") != 0 || len(r.Spans()) != 0 || r.AuditLen() != 0 {
		t.Fatal("nil recorder recorded something")
	}
}

func TestSpanNesting(t *testing.T) {
	r := New()
	root := r.StartSpan("pipeline")
	a := root.Start("trace")
	a.End()
	b := root.Start("detect")
	c := b.Start("replay")
	c.End()
	b.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]*Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["pipeline"].Parent != -1 {
		t.Errorf("root parent = %d, want -1", byName["pipeline"].Parent)
	}
	if byName["trace"].Parent != byName["pipeline"].ID ||
		byName["detect"].Parent != byName["pipeline"].ID {
		t.Error("phase spans not parented to the root")
	}
	if byName["replay"].Parent != byName["detect"].ID {
		t.Error("grandchild not parented to its creator")
	}
	for _, s := range spans {
		if s.Dur < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
	}
}

func TestCountersAndHistograms(t *testing.T) {
	r := New()
	r.Add("x", 2)
	r.Add("x", 3)
	if got := r.Counter("x"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	for _, v := range []int64{0, 1, 2, 3, 900} {
		r.Observe("h", v)
	}
	h := r.Histograms()["h"]
	if h.Count != 5 || h.Sum != 906 || h.Min != 0 || h.Max != 900 {
		t.Fatalf("histogram = %+v", h)
	}
	// 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 900 -> bucket 10.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 10: 1}
	for k, n := range want {
		if h.Buckets[k] != n {
			t.Errorf("bucket %d = %d, want %d", k, h.Buckets[k], n)
		}
	}
	if BucketBound(2) != 3 || BucketBound(10) != 1023 || BucketBound(0) != 0 {
		t.Error("bucket bounds wrong")
	}
}

func TestTopCounters(t *testing.T) {
	r := New()
	r.Add(OpcodeCounterPrefix+"store", 10)
	r.Add(OpcodeCounterPrefix+"load", 30)
	r.Add(OpcodeCounterPrefix+"add", 30)
	r.Add("unrelated", 99)
	top := r.TopCounters(OpcodeCounterPrefix, 2)
	if len(top) != 2 || top[0].Name != "add" || top[1].Name != "load" {
		t.Fatalf("top = %+v", top)
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Hammer one recorder from many goroutines; run under -race this
	// checks the locking, and afterwards every span's parent must lie in
	// its own goroutine's tree (explicit parenting cannot cross trees).
	r := New()
	const gs = 8
	roots := make([]*Span, gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		g := g
		roots[g] = r.StartSpan("root")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := roots[g].Start("work")
				s.Add("n", 1)
				s.Observe("v", int64(i))
				s.End()
			}
			roots[g].End()
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != gs*50 {
		t.Fatalf("counter n = %d, want %d", got, gs*50)
	}
	spans := r.Spans()
	byID := make(map[int]*Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent < 0 {
			continue
		}
		if byID[s.Parent] == nil {
			t.Fatalf("span %d has dangling parent %d", s.ID, s.Parent)
		}
		if byID[s.Parent].Name != "root" {
			t.Fatalf("span %d parented to %q, want a root", s.ID, byID[s.Parent].Name)
		}
	}
}

func TestExportsValidateAgainstSchemas(t *testing.T) {
	r := New()
	root := r.StartSpan("pipeline")
	root.SetAttr("program", "test.pmc")
	ch := root.Start("detect")
	ch.Add("pmcheck.reports", 3)
	ch.Observe("report.occurrences", 7)
	ch.End()
	root.End()
	r.Add(OpcodeCounterPrefix+"store", 12)
	r.RecordAudit(AuditEntry{Action: "insert-flush", Site: "t.pmc:@f:entry:3", Mechanism: "clwb"})

	metrics, err := r.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(metrics); err != nil {
		t.Fatalf("metrics do not validate: %v\n%s", err, metrics)
	}
	spans, err := r.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSpans(spans); err != nil {
		t.Fatalf("spans do not validate: %v\n%s", err, spans)
	}
	plain, err := r.SpansJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(plain, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["spans"]; !ok {
		t.Fatal("plain span export missing spans key")
	}
}

func TestEmptyRecorderExportsValidate(t *testing.T) {
	r := New()
	metrics, err := r.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(metrics); err != nil {
		t.Fatalf("empty metrics do not validate: %v", err)
	}
	spans, err := r.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSpans(spans); err != nil {
		t.Fatalf("empty spans do not validate: %v", err)
	}
}

func TestValidateJSONRejects(t *testing.T) {
	schema := []byte(`{"type":"object","required":["a"],"additionalProperties":false,
		"properties":{"a":{"type":"integer","minimum":0},"b":{"enum":["x","y"]}}}`)
	cases := []struct {
		doc  string
		want string
	}{
		{`{}`, "missing required"},
		{`{"a":1.5}`, "expected integer"},
		{`{"a":-1}`, "below minimum"},
		{`{"a":1,"b":"z"}`, "not in enum"},
		{`{"a":1,"c":2}`, "unexpected property"},
		{`[1]`, "expected object"},
	}
	for _, c := range cases {
		err := ValidateJSON(schema, []byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("doc %s: err=%v, want containing %q", c.doc, err, c.want)
		}
	}
	if err := ValidateJSON(schema, []byte(`{"a":2,"b":"x"}`)); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
}

func TestAuditText(t *testing.T) {
	r := New()
	r.RecordAudit(AuditEntry{
		Action: "insert-flush", Mechanism: "clwb", Site: "t.pmc:@set:entry:4",
		ReportSite: "set@3(t.pmc:12)", ReportClass: "missing-flush&fence",
		Decision: "intraprocedural", Why: "no call site outscored the store", Score: 2,
	})
	r.RecordAudit(AuditEntry{Action: "insert-fence", Mechanism: "sfence", Site: "t.pmc:@set:entry:5"})
	text := r.AuditText()
	for _, want := range []string{
		"2 repair decision(s)",
		"[1] insert-flush clwb at t.pmc:@set:entry:4",
		"report: missing-flush&fence at set@3(t.pmc:12)",
		"decision: intraprocedural (score 2): no call site outscored",
		"[2] insert-fence sfence",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("audit text missing %q:\n%s", want, text)
		}
	}
}

func TestPhaseTotals(t *testing.T) {
	r := New()
	root := r.StartSpan("pipeline")
	for i := 0; i < 3; i++ {
		s := root.Start("trace")
		s.End()
	}
	root.End()
	pts := r.PhaseTotals()
	if len(pts) != 2 || pts[0].Name != "pipeline" || pts[1].Name != "trace" || pts[1].Spans != 3 {
		t.Fatalf("phase totals = %+v", pts)
	}
}
