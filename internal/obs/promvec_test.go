package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestPromVecRendersSortedAndLints(t *testing.T) {
	v := NewPromVec("fleet_requests_total", "Requests by backend and outcome.", "counter", "backend", "outcome")
	v.Add(2, "b1", "ok")
	v.Add(1, "b0", "error")
	v.Add(3, "b0", "ok")
	v.Add(1, "b1", "ok")

	if got := v.Get("b1", "ok"); got != 3 {
		t.Errorf("Get(b1,ok) = %v, want 3", got)
	}
	if got := v.Total(); got != 7 {
		t.Errorf("Total = %v, want 7", got)
	}

	var buf bytes.Buffer
	if err := WriteProm(&buf, []PromFamily{v.Family()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintProm(buf.Bytes()); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	// Sorted by label values: b0 rows before b1, error before ok.
	iErr := strings.Index(out, `backend="b0",outcome="error"`)
	iOK := strings.Index(out, `backend="b0",outcome="ok"`)
	iB1 := strings.Index(out, `backend="b1",outcome="ok"`)
	if iErr < 0 || iOK < 0 || iB1 < 0 || !(iErr < iOK && iOK < iB1) {
		t.Errorf("samples not sorted by label values:\n%s", out)
	}
}

func TestPromVecGaugeSetOverwrites(t *testing.T) {
	v := NewPromVec("fleet_backend_healthy", "1 when healthy.", "gauge", "backend")
	v.Set(1, "b0")
	v.Set(0, "b0")
	if got := v.Get("b0"); got != 0 {
		t.Errorf("Set did not overwrite: got %v", got)
	}
}

func TestPromVecArityEnforced(t *testing.T) {
	v := NewPromVec("x_total", "x", "counter", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("mismatched label arity did not panic")
		}
	}()
	v.Add(1, "only-one")
}

func TestPromVecConcurrent(t *testing.T) {
	v := NewPromVec("x_total", "x", "counter", "who")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Add(1, []string{"a", "b"}[i%2])
				_ = v.Family()
			}
		}(i)
	}
	wg.Wait()
	if got := v.Total(); got != 800 {
		t.Errorf("Total = %v, want 800", got)
	}
}
