package obs

import (
	"embed"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
)

// The telemetry output contract. `make metrics-smoke` runs the tools with
// -metrics/-spans and validates the emitted files against these schemas,
// so a change to the export shape must update them in the same commit.
//
//go:embed schema/metrics.schema.json schema/spans.schema.json
var schemaFS embed.FS

// MetricsSchema returns the checked-in schema for the -metrics JSON.
func MetricsSchema() []byte { return mustSchema("schema/metrics.schema.json") }

// SpansSchema returns the checked-in schema for the -spans (Chrome
// trace_event) JSON.
func SpansSchema() []byte { return mustSchema("schema/spans.schema.json") }

func mustSchema(name string) []byte {
	b, err := schemaFS.ReadFile(name)
	if err != nil {
		panic("obs: embedded schema missing: " + err.Error())
	}
	return b
}

// ValidateMetrics checks a -metrics document against the schema.
func ValidateMetrics(doc []byte) error { return ValidateJSON(MetricsSchema(), doc) }

// ValidateSpans checks a -spans document against the schema.
func ValidateSpans(doc []byte) error { return ValidateJSON(SpansSchema(), doc) }

// ValidateJSON validates doc against schema, a JSON document using the
// subset of JSON Schema the telemetry contract needs: "type" (string,
// number, integer, boolean, object, array, null), "properties",
// "required", "items", "additionalProperties" (bool or schema), "enum",
// and "minimum". Implemented here because the repository takes no
// third-party dependencies.
func ValidateJSON(schema, doc []byte) error {
	var sch any
	if err := json.Unmarshal(schema, &sch); err != nil {
		return fmt.Errorf("obs: schema is not valid JSON: %w", err)
	}
	var d any
	if err := json.Unmarshal(doc, &d); err != nil {
		return fmt.Errorf("obs: document is not valid JSON: %w", err)
	}
	return validate(sch, d, "$")
}

func validate(schema, doc any, path string) error {
	sm, ok := schema.(map[string]any)
	if !ok {
		return fmt.Errorf("obs: schema node at %s is not an object", path)
	}

	if enum, ok := sm["enum"].([]any); ok {
		for _, want := range enum {
			if reflect.DeepEqual(want, doc) {
				return nil
			}
		}
		return fmt.Errorf("%s: value %v not in enum %v", path, doc, enum)
	}

	if ty, ok := sm["type"].(string); ok {
		if err := checkType(ty, doc, path); err != nil {
			return err
		}
	}

	if min, ok := sm["minimum"].(float64); ok {
		n, isNum := doc.(float64)
		if isNum && n < min {
			return fmt.Errorf("%s: %v below minimum %v", path, n, min)
		}
	}

	switch d := doc.(type) {
	case map[string]any:
		props, _ := sm["properties"].(map[string]any)
		if req, ok := sm["required"].([]any); ok {
			for _, k := range req {
				name, _ := k.(string)
				if _, present := d[name]; !present {
					return fmt.Errorf("%s: missing required property %q", path, name)
				}
			}
		}
		for k, v := range d {
			if ps, ok := props[k]; ok {
				if err := validate(ps, v, path+"."+k); err != nil {
					return err
				}
				continue
			}
			switch ap := sm["additionalProperties"].(type) {
			case bool:
				if !ap {
					return fmt.Errorf("%s: unexpected property %q", path, k)
				}
			case map[string]any:
				if err := validate(ap, v, path+"."+k); err != nil {
					return err
				}
			}
		}
	case []any:
		if items, ok := sm["items"]; ok {
			for i, v := range d {
				if err := validate(items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func checkType(ty string, doc any, path string) error {
	ok := false
	switch ty {
	case "object":
		_, ok = doc.(map[string]any)
	case "array":
		_, ok = doc.([]any)
	case "string":
		_, ok = doc.(string)
	case "boolean":
		_, ok = doc.(bool)
	case "number":
		_, ok = doc.(float64)
	case "integer":
		n, isNum := doc.(float64)
		ok = isNum && n == math.Trunc(n)
	case "null":
		ok = doc == nil
	default:
		return fmt.Errorf("%s: schema uses unsupported type %q", path, ty)
	}
	if !ok {
		return fmt.Errorf("%s: expected %s, got %T", path, ty, doc)
	}
	return nil
}
