package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestValidateSmokeArtifacts validates telemetry files a real CLI run
// wrote to disk. `make metrics-smoke` runs hippocrates on
// testdata/metrics_smoke.pmc with -metrics and -spans, then invokes this
// test with OBS_SMOKE_DIR pointing at the output directory. Without the
// variable the test skips — in-process export validation is covered by
// the tests above.
func TestValidateSmokeArtifacts(t *testing.T) {
	dir := os.Getenv("OBS_SMOKE_DIR")
	if dir == "" {
		t.Skip("OBS_SMOKE_DIR not set; run via `make metrics-smoke`")
	}
	metrics, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(metrics); err != nil {
		t.Errorf("metrics.json does not match schema/metrics.schema.json: %v", err)
	}
	spans, err := os.ReadFile(filepath.Join(dir, "spans.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSpans(spans); err != nil {
		t.Errorf("spans.json does not match schema/spans.schema.json: %v", err)
	}

	// Beyond schema shape, the smoke run is a full repair, so its span
	// file must cover the whole pipeline.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(spans, &doc); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, phase := range []string{"lex", "parse", "lower", "trace", "detect", "plan", "apply", "revalidate"} {
		if !seen[phase] {
			t.Errorf("span file is missing pipeline phase %q (has %v)", phase, names(seen))
		}
	}

	// And the metrics must show fixes were actually applied and audited.
	var m struct {
		Counters     map[string]int64 `json:"counters"`
		AuditEntries int64            `json:"audit_entries"`
	}
	if err := json.Unmarshal(metrics, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["fix.count"] <= 0 {
		t.Errorf("metrics report no applied fixes (fix.count=%d)", m.Counters["fix.count"])
	}
	if m.AuditEntries <= 0 {
		t.Errorf("metrics report no audit entries")
	}
}

func names(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}
