package fleet

import (
	"fmt"
	"testing"
)

func TestRingOrderDeterministicAndComplete(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("source-key-%d", i)
		o1 := r.Order(key)
		o2 := r.Order(key)
		if len(o1) != 3 {
			t.Fatalf("Order(%q) returned %d backends, want 3", key, len(o1))
		}
		seen := map[string]bool{}
		for _, b := range o1 {
			seen[b] = true
		}
		if len(seen) != 3 {
			t.Fatalf("Order(%q) = %v contains duplicates", key, o1)
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("Order(%q) not deterministic: %v vs %v", key, o1, o2)
			}
		}
	}
}

// TestRingOwnershipStableAcrossMembership: the owner a key maps to on an
// N-ring must equal its owner on the (N+1)-ring whenever the new member
// is not the one that took over — i.e. adding a node only moves keys TO
// the new node, never shuffles keys between survivors. That property is
// the whole point of consistent hashing: a failover or scale-out event
// must not dump every backend's warm caches.
func TestRingOwnershipStableAcrossMembership(t *testing.T) {
	small, err := NewRing([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("program-%d.pmc", i)
		was, now := small.Order(key)[0], big.Order(key)[0]
		if now == "d" {
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %s -> %s without involving the new node", key, was, now)
		}
	}
	// ~1/4 of the keyspace should migrate to the new node — not ~0 (the
	// node would be idle) and not ~all (that would be mod-N rehashing).
	if moved < keys/8 || moved > keys/2 {
		t.Errorf("%d/%d keys moved to the new node; expected roughly a quarter", moved, keys)
	}
}

// TestRingFailoverPreservesSurvivorOrder: skipping the first preference
// (the ejected owner) must leave the rest of the order intact, so every
// key with a live owner is untouched by another backend's ejection.
func TestRingFailoverPreservesSurvivorOrder(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[r.Order(fmt.Sprintf("key-%d", i))[0]]++
	}
	for _, b := range []string{"a", "b", "c"} {
		if counts[b] < 150 {
			t.Errorf("backend %s owns only %d/1000 keys — vnode spread too uneven", b, counts[b])
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}); err == nil {
		t.Error("duplicate backend accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Error("empty backend name accepted")
	}
}
