package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hippocrates/internal/cli"
	"hippocrates/internal/obs"
)

// Tuning defaults. Every knob is overridable through Config; the
// defaults are sized for same-host fleets (the chaos harness and the
// fleet-smoke gate), where connection failures surface in microseconds.
const (
	defaultProbeInterval = 500 * time.Millisecond
	defaultRetryBase     = 50 * time.Millisecond
	defaultRetryMax      = 2 * time.Second
	defaultDeadlineGrace = 2 * time.Second
	maxBodyBytes         = 64 << 20
)

// Backend names one hippocratesd node for the router.
type Backend struct {
	Name string // stable identity; should match the daemon's -id
	URL  string // e.g. http://127.0.0.1:8081
}

// Config configures a Router.
type Config struct {
	Backends []Backend
	// ProbeInterval is the health-poll period (default 500ms).
	ProbeInterval time.Duration
	// HedgeAfter, when > 0, fires a duplicate attempt chain on the
	// rotated preference order if the primary has not answered within
	// this long. Safe by construction: hippocratesd's replay contract is
	// byte-identical responses for an identical request, so whichever
	// copy wins, the client sees the same bytes. Costs duplicate work —
	// reserve it for latency-sensitive fronts.
	HedgeAfter time.Duration
	// RetryBase is the base backoff between failover attempts (default
	// 50ms, exponential, ±50% jitter, capped at 2s).
	RetryBase time.Duration
	// DeadlineGrace pads the client's timeout_ms when deriving the
	// proxy-side deadline (default 2s): the backend must have time to
	// answer its own 504 before the router gives up on the connection.
	DeadlineGrace time.Duration
	// Client overrides the proxying HTTP client (default: no timeout —
	// per-request deadlines come from timeout_ms via context).
	Client *http.Client
	// ProbeClient overrides the health-poll client (default 2s timeout).
	ProbeClient *http.Client
}

// Router is the consistent-hash fleet front. Create with New, serve
// Handler(), stop with Close.
type Router struct {
	cfg      Config
	ring     *Ring
	backends map[string]*backend
	client   *http.Client
	probe    *http.Client

	inFlight atomic.Int64
	stop     chan struct{}
	done     sync.WaitGroup

	mRequests  *obs.PromVec // code × backend
	mRetries   *obs.PromVec // reason (conn | reject)
	mEjections *obs.PromVec // backend
	mHealthy   *obs.PromVec // backend gauge
	mHedges    *obs.PromVec
	mHedgeWins *obs.PromVec
}

// New builds the router, runs one synchronous health-probe round (so
// the first request already has verdicts, not zero values), and starts
// the background poller.
func New(cfg Config) (*Router, error) {
	names := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		names[i] = b.Name
	}
	ring, err := NewRing(names)
	if err != nil {
		return nil, err
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.DeadlineGrace <= 0 {
		cfg.DeadlineGrace = defaultDeadlineGrace
	}
	rt := &Router{
		cfg:      cfg,
		ring:     ring,
		backends: make(map[string]*backend, len(cfg.Backends)),
		client:   cfg.Client,
		probe:    cfg.ProbeClient,
		stop:     make(chan struct{}),

		mRequests:  obs.NewPromVec("hippocratesfleet_requests_total", "Proxied requests by final status code and answering backend.", "counter", "code", "backend"),
		mRetries:   obs.NewPromVec("hippocratesfleet_retries_total", "Failover retries by reason (conn = transport failure, reject = backend 503).", "counter", "reason"),
		mEjections: obs.NewPromVec("hippocratesfleet_breaker_ejections_total", "Circuit-breaker ejections per backend.", "counter", "backend"),
		mHealthy:   obs.NewPromVec("hippocratesfleet_backend_healthy", "Health-probe verdict per backend (1 = healthy and not draining).", "gauge", "backend"),
		mHedges:    obs.NewPromVec("hippocratesfleet_hedges_total", "Hedged duplicate attempt chains launched.", "counter"),
		mHedgeWins: obs.NewPromVec("hippocratesfleet_hedge_wins_total", "Requests answered by the hedge instead of the primary.", "counter"),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.probe == nil {
		rt.probe = &http.Client{Timeout: 2 * time.Second}
	}
	// Pre-seed every counter cell at zero: scrapes see the full shape of
	// the metric space from the first poll, not only after the first event.
	rt.mRetries.Add(0, "conn")
	rt.mRetries.Add(0, "reject")
	rt.mHedges.Add(0)
	rt.mHedgeWins.Add(0)
	for _, b := range cfg.Backends {
		rt.backends[b.Name] = &backend{name: b.Name, url: b.URL}
		rt.mEjections.Add(0, b.Name)
	}
	rt.probeAll()
	rt.done.Add(1)
	go rt.pollHealth()
	return rt, nil
}

// Close stops the health poller. In-flight proxying is unaffected.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	rt.done.Wait()
}

func (rt *Router) pollHealth() {
	defer rt.done.Done()
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			if b.probeHealth(rt.probe) {
				rt.mHealthy.Set(1, b.name)
			} else {
				rt.mHealthy.Set(0, b.name)
			}
		}(b)
	}
	wg.Wait()
}

// Handler returns the router's HTTP surface: the proxied job API plus
// the router's own health and metrics endpoints.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/repair", rt.handleProxy)
	mux.HandleFunc("POST /api/v1/jobs", rt.handleProxy)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /metrics.json", rt.handleMetricsJSON)
	return mux
}

// proxyResult is one attempt chain's terminal answer.
type proxyResult struct {
	status  int
	header  http.Header
	body    []byte
	backend string
	err     error // set only when the whole chain failed without an HTTP answer
}

// handleProxy routes one job submission: pick the preference order from
// the source key, run the bounded retry chain, optionally hedge, relay
// the winner verbatim.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	rt.inFlight.Add(1)
	defer rt.inFlight.Add(-1)

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil || len(body) > maxBodyBytes {
		writeRouterError(w, http.StatusBadRequest, "unreadable or oversized body")
		return
	}
	// The router only needs the source key and deadline; the body is
	// forwarded untouched so backend-side request hashing sees exactly
	// the client's bytes.
	var peek struct {
		Program   string `json:"program"`
		Source    string `json:"source"`
		TimeoutMS int64  `json:"timeout_ms"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeRouterError(w, http.StatusBadRequest, "request is not JSON: %v", err)
		return
	}
	key := (&cli.Request{Program: peek.Program, Source: peek.Source}).SourceKey()
	order := rt.ring.Order(key)

	ctx := r.Context()
	if peek.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx,
			time.Duration(peek.TimeoutMS)*time.Millisecond+rt.cfg.DeadlineGrace)
		defer cancel()
	}

	res := rt.raceChains(ctx, r, order, body)
	if res.err != nil {
		// Every backend was down, draining, or unreachable: tell the
		// client to back off and retry — the same contract a draining
		// daemon gives, so existing clients need no new handling.
		h := w.Header()
		h.Set("Retry-After", strconv.Itoa(1+rand.IntN(3)))
		rt.mRequests.Add(1, "503", "none")
		writeRouterError(w, http.StatusServiceUnavailable, "no backend available: %v", res.err)
		return
	}
	relay(w, res)
	rt.mRequests.Add(1, strconv.Itoa(res.status), res.backend)
}

// raceChains runs the primary attempt chain and, when hedging is armed
// and the primary is slow, a duplicate on the rotated order. First
// terminal answer wins; the loser's context is cancelled.
func (rt *Router) raceChains(ctx context.Context, r *http.Request, order []string, body []byte) *proxyResult {
	hedged := rt.cfg.HedgeAfter > 0 && len(order) > 1
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	primary := make(chan *proxyResult, 1)
	go func() { primary <- rt.attemptChain(cctx, r, order, body) }()
	if !hedged {
		return <-primary
	}
	timer := time.NewTimer(rt.cfg.HedgeAfter)
	defer timer.Stop()
	select {
	case res := <-primary:
		return res
	case <-timer.C:
	}
	rt.mHedges.Add(1)
	rot := make([]string, 0, len(order))
	rot = append(rot, order[1:]...)
	rot = append(rot, order[0])
	hedge := make(chan *proxyResult, 1)
	go func() { hedge <- rt.attemptChain(cctx, r, rot, body) }()

	// Two chains racing; a chain that failed outright must not win
	// while the other still runs.
	select {
	case res := <-primary:
		if res.err == nil {
			return res
		}
		if h := <-hedge; h.err == nil {
			rt.mHedgeWins.Add(1)
			return h
		}
		return res
	case res := <-hedge:
		if res.err == nil {
			rt.mHedgeWins.Add(1)
			return res
		}
		if p := <-primary; p.err == nil {
			return p
		}
		return res
	}
}

// attemptChain walks the preference order with bounded retries: up to
// two passes over the candidates. Transport failures feed the breaker
// and back off exponentially with jitter; a 503 advances to the next
// candidate without a breaker count (drain is deliberate); every other
// HTTP answer — including 429 backpressure and the deterministic
// 504-deadline/422 error docs — is terminal and relayed as-is, because
// replaying a deterministic failure elsewhere buys nothing and hides
// backpressure from the client.
func (rt *Router) attemptChain(ctx context.Context, r *http.Request, order []string, body []byte) *proxyResult {
	var lastErr error = fmt.Errorf("no candidates")
	attempt := 0
	for pass := 0; pass < 2; pass++ {
		candidates := rt.partition(order, pass)
		for _, b := range candidates {
			if ctx.Err() != nil {
				return &proxyResult{err: ctx.Err()}
			}
			if attempt > 0 {
				sleepCtx(ctx, backoff(rt.cfg.RetryBase, attempt-1))
			}
			attempt++
			res, err := rt.proxyOnce(ctx, r, b, body)
			if err != nil {
				lastErr = err
				if b.Fail() {
					rt.mEjections.Add(1, b.name)
				}
				rt.mRetries.Add(1, "conn")
				continue
			}
			b.Succeed()
			if res.status == http.StatusServiceUnavailable {
				lastErr = fmt.Errorf("%s: HTTP 503 (draining or saturated)", b.name)
				rt.mRetries.Add(1, "reject")
				continue
			}
			return res
		}
	}
	return &proxyResult{err: lastErr}
}

// partition orders the pass's candidates: pass 0 tries only available
// backends (healthy, not draining, not ejected) in preference order;
// pass 1 is the last resort — every backend in preference order, since
// health verdicts may be up to a probe interval stale.
func (rt *Router) partition(order []string, pass int) []*backend {
	var out []*backend
	for _, name := range order {
		b := rt.backends[name]
		if pass == 0 && !b.Available() {
			continue
		}
		out = append(out, b)
	}
	return out
}

// proxyOnce forwards the submission to one backend. Transport-level
// failure returns err; any HTTP answer returns a result.
func (rt *Router) proxyOnce(ctx context.Context, orig *http.Request, b *backend, body []byte) (*proxyResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+orig.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tid := orig.Header.Get("X-Trace-Id"); tid != "" {
		req.Header.Set("X-Trace-Id", tid)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxyResult{status: resp.StatusCode, header: resp.Header, body: data, backend: b.name}, nil
}

// relayHeaders are the backend response headers the router forwards.
var relayHeaders = []string{
	"Content-Type",
	"Retry-After",
	"X-Hippocrates-Job",
	"X-Hippocrates-Cache",
	"X-Hippocrates-Backend",
	"X-Trace-Id",
}

func relay(w http.ResponseWriter, res *proxyResult) {
	h := w.Header()
	for _, name := range relayHeaders {
		if v := res.header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func writeRouterError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// backoff is exponential from base with ±50% jitter, capped.
func backoff(base time.Duration, n int) time.Duration {
	if n > 8 {
		n = 8
	}
	d := base << n
	if d > defaultRetryMax {
		d = defaultRetryMax
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int64N(half+1))
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Stats is a point-in-time snapshot of the router's own counters, for
// harnesses and benchmarks that assert on routing behavior without
// scraping and parsing /metrics.
type Stats struct {
	RetriesConn   float64 `json:"retries_conn"`
	RetriesReject float64 `json:"retries_reject"`
	Ejections     float64 `json:"ejections"`
	Hedges        float64 `json:"hedges"`
	HedgeWins     float64 `json:"hedge_wins"`
}

// StatsSnapshot returns the router's current counter values.
func (rt *Router) StatsSnapshot() Stats {
	return Stats{
		RetriesConn:   rt.mRetries.Get("conn"),
		RetriesReject: rt.mRetries.Get("reject"),
		Ejections:     rt.mEjections.Total(),
		Hedges:        rt.mHedges.Total(),
		HedgeWins:     rt.mHedgeWins.Total(),
	}
}

// handleHealthz reports the router's view of the fleet. The router
// itself answers 200 as long as it is up; per-backend verdicts are in
// the body (and a fleet with zero available backends reports
// available_backends 0 — monitors alert on the number, load balancers
// on the status).
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := rt.states()
	avail := 0
	for _, s := range states {
		if s.Healthy && !s.Draining && !s.Ejected {
			avail++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":             "ok",
		"role":               "router",
		"backends":           states,
		"available_backends": avail,
	})
}

func (rt *Router) states() []BackendState {
	out := make([]BackendState, 0, len(rt.backends))
	for _, name := range rt.ring.Backends() {
		out = append(out, rt.backends[name].state())
	}
	return out
}

// handleMetrics renders the router's own Prometheus families. The
// output must pass obs.LintProm — the fleet-smoke gate checks it.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fams := []obs.PromFamily{
		rt.mRequests.Family(),
		rt.mRetries.Family(),
		rt.mEjections.Family(),
		rt.mHealthy.Family(),
		rt.mHedges.Family(),
		rt.mHedgeWins.Family(),
		{
			Name: "hippocratesfleet_in_flight", Help: "Requests currently being proxied.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(rt.inFlight.Load())}},
		},
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, fams)
}

// handleMetricsJSON aggregates queue state across live backends into
// the same minimal shape hippocratesd serves, so the loadgen sampler
// can point at the router unchanged.
func (rt *Router) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	type queueDoc struct {
		Depth    int   `json:"depth"`
		InFlight int64 `json:"in_flight"`
	}
	var (
		q          queueDoc
		hits, miss int64
		mu         sync.Mutex
		wg         sync.WaitGroup
	)
	for _, b := range rt.backends {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			resp, err := rt.probe.Get(url + "/metrics.json")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var doc struct {
				Queue queueDoc `json:"queue"`
				Cache struct {
					ResponseHits   int64 `json:"response_hits"`
					ResponseMisses int64 `json:"response_misses"`
				} `json:"cache"`
			}
			if json.NewDecoder(resp.Body).Decode(&doc) == nil {
				mu.Lock()
				q.Depth += doc.Queue.Depth
				q.InFlight += doc.Queue.InFlight
				hits += doc.Cache.ResponseHits
				miss += doc.Cache.ResponseMisses
				mu.Unlock()
			}
		}(b.url)
	}
	wg.Wait()
	cache := map[string]any{"response_hits": hits, "response_misses": miss}
	if hits+miss > 0 {
		cache["hit_ratio"] = float64(hits) / float64(hits+miss)
	} else {
		cache["hit_ratio"] = 0.0
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"queue": q, "cache": cache, "router_in_flight": rt.inFlight.Load(),
	})
}
