package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hippocrates/internal/obs"
)

// fakeBackend is a minimal hippocratesd stand-in: a healthz endpoint and
// a repair endpoint whose behavior the test scripts per call. The real
// daemon is exercised by the chaos package; these tests isolate routing
// policy.
type fakeBackend struct {
	name    string
	ts      *httptest.Server
	hits    atomic.Int64
	handler atomic.Value // func(w http.ResponseWriter, r *http.Request)
}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	fb := &fakeBackend{name: name}
	fb.handler.Store(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Hippocrates-Backend", name)
		fmt.Fprintf(w, `{"backend":%q}`, name)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /api/v1/repair", func(w http.ResponseWriter, r *http.Request) {
		fb.hits.Add(1)
		fb.handler.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *fakeBackend) respond(fn func(w http.ResponseWriter, r *http.Request)) {
	fb.handler.Store(fn)
}

func newTestRouter(t *testing.T, cfg Config, fbs ...*fakeBackend) *Router {
	for _, fb := range fbs {
		cfg.Backends = append(cfg.Backends, Backend{Name: fb.name, URL: fb.ts.URL})
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postJob(t *testing.T, url, program string) (*http.Response, []byte) {
	t.Helper()
	body := fmt.Sprintf(`{"program":%q,"source":"fn main() {}","mode":"check"}`, program)
	resp, err := http.Post(url+"/api/v1/repair", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRouterStickyRouting: the same program must land on the same
// backend every time, and distinct programs must spread.
func TestRouterStickyRouting(t *testing.T) {
	a, b, c := newFakeBackend(t, "a"), newFakeBackend(t, "b"), newFakeBackend(t, "c")
	rt := newTestRouter(t, Config{}, a, b, c)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// One program, many submissions: exactly one backend serves them all.
	for i := 0; i < 6; i++ {
		resp, data := postJob(t, ts.URL, "sticky.pmc")
		if resp.StatusCode != 200 {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
	}
	nonZero := 0
	for _, fb := range []*fakeBackend{a, b, c} {
		if n := fb.hits.Load(); n > 0 {
			nonZero++
			if n != 6 {
				t.Errorf("backend %s served %d of 6 submissions of one program", fb.name, n)
			}
		}
	}
	if nonZero != 1 {
		t.Errorf("one program hit %d backends, want exactly 1", nonZero)
	}

	// Many programs: more than one backend does work.
	for i := 0; i < 30; i++ {
		postJob(t, ts.URL, fmt.Sprintf("spread-%d.pmc", i))
	}
	spread := 0
	for _, fb := range []*fakeBackend{a, b, c} {
		if fb.hits.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("30 distinct programs landed on %d backend(s)", spread)
	}
}

// TestRouterFailsOverOnConnError: a dead owner must not surface to the
// client — the next backend in the key's preference order takes the job.
func TestRouterFailsOverOnConnError(t *testing.T) {
	a, b, c := newFakeBackend(t, "a"), newFakeBackend(t, "b"), newFakeBackend(t, "c")
	rt := newTestRouter(t, Config{}, a, b, c)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Find which backend owns this program, then kill it.
	resp, _ := postJob(t, ts.URL, "victim.pmc")
	owner := resp.Header.Get("X-Hippocrates-Backend")
	if owner == "" {
		t.Fatal("no backend header on routed response")
	}
	for _, fb := range []*fakeBackend{a, b, c} {
		if fb.name == owner {
			fb.ts.Close()
		}
	}

	resp2, data := postJob(t, ts.URL, "victim.pmc")
	if resp2.StatusCode != 200 {
		t.Fatalf("failover: HTTP %d: %s", resp2.StatusCode, data)
	}
	if got := resp2.Header.Get("X-Hippocrates-Backend"); got == owner || got == "" {
		t.Errorf("failover answered by %q, want a different live backend than %q", got, owner)
	}
}

// TestRouterRelays503AndRetryAfterWhenAllDown: with every backend gone
// the router must answer 503 with a Retry-After, never hang or 502.
func TestRouterRelays503WhenAllDown(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{RetryBase: time.Millisecond}, a, b)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	a.ts.Close()
	b.ts.Close()

	resp, data := postJob(t, ts.URL, "orphan.pmc")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down: HTTP %d: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("all-down 503 carries no Retry-After")
	}
}

// TestRouterDoesNotRetryDeterministicFailures: 422 and 504 are
// deterministic per request — replaying them on another backend would
// waste a worker and delay the verdict. They must relay through on the
// first attempt, typed body intact.
func TestRouterDoesNotRetryDeterministicFailures(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	for _, fb := range []*fakeBackend{a, b} {
		fb.respond(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusGatewayTimeout)
			fmt.Fprint(w, `{"error":"job x: deadline exceeded","kind":"deadline"}`)
		})
	}
	rt := newTestRouter(t, Config{}, a, b)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, data := postJob(t, ts.URL, "slow.pmc")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d, want 504: %s", resp.StatusCode, data)
	}
	var doc struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || doc.Kind != "deadline" {
		t.Errorf("typed error doc not relayed: %s", data)
	}
	if total := a.hits.Load() + b.hits.Load(); total != 1 {
		t.Errorf("deterministic 504 provoked %d attempts, want exactly 1", total)
	}
}

// TestRouterBreakerEjectsAndRecovers: repeated transport failures must
// eject a backend (visible in /healthz) and a recovered backend must
// come back after the cooldown + a successful probe.
func TestRouterBreakerEjects(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{RetryBase: time.Millisecond}, a, b)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, _ := postJob(t, ts.URL, "breaker.pmc")
	owner := resp.Header.Get("X-Hippocrates-Backend")
	for _, fb := range []*fakeBackend{a, b} {
		if fb.name == owner {
			fb.ts.Close()
		}
	}
	// Hammer the dead owner's key until the breaker trips.
	for i := 0; i < 4; i++ {
		postJob(t, ts.URL, "breaker.pmc")
	}
	if !rt.backends[owner].Ejected() {
		t.Errorf("backend %s not ejected after repeated transport failures", owner)
	}
	if rt.mEjections.Get(owner) == 0 {
		t.Error("ejection not counted in metrics")
	}
}

// TestRouterHedgesSlowOwner: a slow (but alive) owner must not pin the
// client to its latency when hedging is armed — the duplicate chain on
// the next preference answers first, byte-identical by contract.
func TestRouterHedgesSlowOwner(t *testing.T) {
	a, b, c := newFakeBackend(t, "a"), newFakeBackend(t, "b"), newFakeBackend(t, "c")
	rt := newTestRouter(t, Config{HedgeAfter: 30 * time.Millisecond}, a, b, c)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, _ := postJob(t, ts.URL, "hedge.pmc")
	owner := resp.Header.Get("X-Hippocrates-Backend")
	for _, fb := range []*fakeBackend{a, b, c} {
		if fb.name == owner {
			fb.respond(func(w http.ResponseWriter, r *http.Request) {
				time.Sleep(2 * time.Second)
				w.Header().Set("X-Hippocrates-Backend", owner)
				fmt.Fprint(w, `{"slow":true}`)
			})
		}
	}
	start := time.Now()
	resp2, data := postJob(t, ts.URL, "hedge.pmc")
	elapsed := time.Since(start)
	if resp2.StatusCode != 200 {
		t.Fatalf("hedged request: HTTP %d: %s", resp2.StatusCode, data)
	}
	if got := resp2.Header.Get("X-Hippocrates-Backend"); got == owner {
		t.Errorf("hedge did not win: answered by slow owner %q", got)
	}
	if elapsed > time.Second {
		t.Errorf("hedged request took %s — waited for the slow owner", elapsed)
	}
	if rt.mHedges.Total() == 0 || rt.mHedgeWins.Total() == 0 {
		t.Errorf("hedge metrics: launched=%v wins=%v, want both > 0",
			rt.mHedges.Total(), rt.mHedgeWins.Total())
	}
}

// TestRouterMetricsLint: the router's /metrics output must pass the
// same linter the daemon's does.
func TestRouterMetricsLint(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{}, a)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	postJob(t, ts.URL, "lint.pmc")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := obs.LintProm(data); err != nil {
		t.Fatalf("router /metrics fails lint: %v\n%s", err, data)
	}
	for _, want := range []string{"hippocratesfleet_requests_total", "hippocratesfleet_backend_healthy", "hippocratesfleet_in_flight"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing family %s", want)
		}
	}
}

// TestRouterHealthzReportsBackends: the router's own health document
// carries one row per backend with live verdicts.
func TestRouterHealthzReportsBackends(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{ProbeInterval: 20 * time.Millisecond}, a, b)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	b.ts.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Backends  []BackendState `json:"backends"`
			Available int            `json:"available_backends"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(doc.Backends) != 2 {
			t.Fatalf("healthz lists %d backends, want 2", len(doc.Backends))
		}
		if doc.Available == 1 {
			return // poller noticed the dead backend
		}
		if time.Now().After(deadline) {
			t.Fatalf("health poller never marked the dead backend: %+v", doc.Backends)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
