// Package chaos is the fleet's fault-injection harness: it boots real
// in-process hippocratesd backends behind a hippocratesfleet router,
// injects faults mid-load — abrupt kills, SIGTERM-style drains, added
// latency, connection resets — and asserts the Hippocratic property at
// fleet scope: every accepted job's response is byte-identical to a
// sequential cli.Run of the same request, and everything else is an
// honest, retryable rejection. `hippocratesfleet -smoke` runs it as a
// CI gate.
package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a TCP fault-injection proxy in front of one backend: it
// forwards byte streams verbatim until told to stall new connections
// (latency injection) or snap every Nth one (connection resets). The
// router's transport must survive both without losing a job.
type Proxy struct {
	listener net.Listener
	target   string

	latency    atomic.Int64 // initial per-connection stall, ns
	resetEvery atomic.Int64 // abort every Nth new connection (0 = never)
	conns      atomic.Int64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port forwarding to target
// (a host:port address).
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{listener: ln, target: target}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// URL returns the proxy's http base URL.
func (p *Proxy) URL() string { return "http://" + p.listener.Addr().String() }

// SetLatency stalls every NEW connection for d before any byte flows.
// Callers that want the stall to apply per request must disable HTTP
// keep-alives so each request dials fresh.
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// SetResetEvery makes every nth new connection abort immediately —
// the client sees a connection reset. 0 disables.
func (p *Proxy) SetResetEvery(n int) { p.resetEvery.Store(int64(n)) }

// Close stops accepting and waits for forwarders to unwind.
func (p *Proxy) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.listener.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		n := p.conns.Add(1)
		if every := p.resetEvery.Load(); every > 0 && n%every == 0 {
			// Snap it: RST if the stack obliges (SO_LINGER 0), else a
			// plain close — either way the client's request dies.
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			conn.Close()
			continue
		}
		p.wg.Add(1)
		go p.forward(conn)
	}
}

func (p *Proxy) forward(client net.Conn) {
	defer p.wg.Done()
	defer client.Close()
	if d := time.Duration(p.latency.Load()); d > 0 {
		time.Sleep(d)
	}
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	defer upstream.Close()
	done := make(chan struct{}, 2)
	go func() { io.Copy(upstream, client); done <- struct{}{} }()
	go func() { io.Copy(client, upstream); done <- struct{}{} }()
	// Either direction closing tears the pair down; the deferred closes
	// unblock the other copier.
	<-done
}
