package chaos

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"hippocrates/internal/fleet"
	"hippocrates/internal/server"
)

// TestFleet is N real in-process hippocratesd backends behind a real
// hippocratesfleet router, each optionally fronted by a fault-injection
// proxy, with kill/drain controls — the scenario runner's rig.
type TestFleet struct {
	Backends []*BackendNode
	Router   *fleet.Router
	routerTS *http.Server
	routerLn net.Listener
}

// BackendNode is one backend plus its plumbing.
type BackendNode struct {
	Name   string
	Server *server.Server
	Proxy  *Proxy // nil unless the fleet was built WithProxies
	httpd  *http.Server
	ln     net.Listener
	killed bool
}

// FleetOptions configures the rig.
type FleetOptions struct {
	Backends    int           // node count (default 3)
	Workers     int           // per-backend worker pool (default 2)
	QueueDepth  int           // per-shard queue depth (default 32)
	WithProxies bool          // front each backend with a chaos proxy
	HedgeAfter  time.Duration // router hedging threshold (0 = off)
	// NoKeepAlives dials a fresh backend connection per proxied request,
	// so per-connection fault injection (latency, resets) applies to
	// every request instead of only the first on each kept-alive conn.
	NoKeepAlives bool
}

// NewTestFleet boots the rig. Close tears everything down.
func NewTestFleet(opts FleetOptions) (*TestFleet, error) {
	if opts.Backends <= 0 {
		opts.Backends = 3
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 32
	}
	tf := &TestFleet{}
	var members []fleet.Backend
	for i := 0; i < opts.Backends; i++ {
		name := fmt.Sprintf("b%d", i)
		node := &BackendNode{Name: name}
		node.Server = server.New(server.Config{
			Workers:    opts.Workers,
			QueueDepth: opts.QueueDepth,
			BackendID:  name,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tf.Close()
			return nil, err
		}
		node.ln = ln
		node.httpd = &http.Server{Handler: node.Server.Handler()}
		go node.httpd.Serve(ln)
		url := "http://" + ln.Addr().String()
		if opts.WithProxies {
			p, err := NewProxy(ln.Addr().String())
			if err != nil {
				tf.Close()
				return nil, err
			}
			node.Proxy = p
			url = p.URL()
		}
		tf.Backends = append(tf.Backends, node)
		members = append(members, fleet.Backend{Name: name, URL: url})
	}

	client := &http.Client{}
	if opts.NoKeepAlives {
		client.Transport = &http.Transport{DisableKeepAlives: true}
	}
	rt, err := fleet.New(fleet.Config{
		Backends:      members,
		ProbeInterval: 100 * time.Millisecond,
		HedgeAfter:    opts.HedgeAfter,
		Client:        client,
	})
	if err != nil {
		tf.Close()
		return nil, err
	}
	tf.Router = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tf.Close()
		return nil, err
	}
	tf.routerLn = ln
	tf.routerTS = &http.Server{Handler: rt.Handler()}
	go tf.routerTS.Serve(ln)
	return tf, nil
}

// RouterURL is the fleet's front door.
func (tf *TestFleet) RouterURL() string { return "http://" + tf.routerLn.Addr().String() }

// BackendURLs lists the addresses the router sees (proxied when proxies
// are on) — what a sampler should probe.
func (tf *TestFleet) BackendURLs() []string {
	out := make([]string, len(tf.Backends))
	for i, n := range tf.Backends {
		if n.Proxy != nil {
			out[i] = n.Proxy.URL()
		} else {
			out[i] = "http://" + n.ln.Addr().String()
		}
	}
	return out
}

// Kill hard-stops backend i: the HTTP server closes abruptly, active
// connections die mid-flight, the port starts refusing. The worker pool
// is NOT drained — this models a crashed process, and the router must
// absorb it.
func (tf *TestFleet) Kill(i int) {
	n := tf.Backends[i]
	if n.killed {
		return
	}
	n.killed = true
	n.httpd.Close()
	if n.Proxy != nil {
		n.Proxy.Close()
	}
}

// Drain begins a SIGTERM-style graceful drain of backend i in the
// background: new submissions start answering 503 + Retry-After while
// accepted jobs run to completion. The HTTP listener stays up the whole
// time — exactly what hippocratesd's signal handler does.
func (tf *TestFleet) Drain(i int) <-chan error {
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		done <- tf.Backends[i].Server.Shutdown(ctx)
	}()
	return done
}

// Close tears the rig down; killed/drained nodes are skipped where
// already gone.
func (tf *TestFleet) Close() {
	if tf.routerTS != nil {
		tf.routerTS.Close()
	}
	if tf.Router != nil {
		tf.Router.Close()
	}
	for _, n := range tf.Backends {
		if n.httpd != nil && !n.killed {
			n.httpd.Close()
		}
		if n.Proxy != nil && !n.killed {
			n.Proxy.Close()
		}
		if n.Server != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			n.Server.Shutdown(ctx)
			cancel()
		}
	}
}
