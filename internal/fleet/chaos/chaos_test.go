package chaos

import (
	"encoding/json"
	"testing"
)

// TestChaosScenariosZeroHarm runs the full fault-injection suite —
// kill, drain, latency+hedging, connection resets — against real
// in-process backends and fails on any lost or corrupted job. Runs
// under -race in the tier-1 suite (skipped in -short).
func TestChaosScenariosZeroHarm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite in -short mode")
	}
	results, err := RunAll(testWriter{t})
	if err != nil {
		t.Fatalf("chaos harness: %v", err)
	}
	if len(results) != len(Scenarios()) {
		t.Fatalf("ran %d scenarios, want %d", len(results), len(Scenarios()))
	}
	for _, res := range results {
		if res.OK() {
			continue
		}
		doc, _ := json.MarshalIndent(res, "", "  ")
		t.Errorf("scenario %s failed:\n%s", res.Scenario, doc)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
