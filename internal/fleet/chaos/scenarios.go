package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"hippocrates/internal/cli"
	"hippocrates/internal/fleet"
	"hippocrates/internal/obs"
	"hippocrates/internal/server/loadgen"
)

// Result is one scenario's verdict. A scenario passes iff Harm,
// BadRejects, and Failures are all empty and every job was accepted —
// chaos may slow the fleet down, but it must never change an answer or
// lose an accepted job.
type Result struct {
	Scenario   string         `json:"scenario"`
	Jobs       int            `json:"jobs"`
	Accepted   int            `json:"accepted"`
	Retries429 int            `json:"retries_429"`
	Retries503 int            `json:"retries_503"`
	WallMS     float64        `json:"wall_ms"`
	P99MS      float64        `json:"p99_ms"`
	Backends   map[string]int `json:"backends,omitempty"`
	Router     fleet.Stats    `json:"router"`
	// Harm lists accepted responses whose bytes diverged from the
	// sequential ground truth — the one list that must stay empty for
	// the Hippocratic property to hold at fleet scope.
	Harm       []string `json:"harm,omitempty"`
	BadRejects []string `json:"bad_rejects,omitempty"`
	Failures   []string `json:"failures,omitempty"`
}

// OK reports whether the scenario upheld zero-harm and zero-loss.
func (r *Result) OK() bool {
	return len(r.Harm) == 0 && len(r.BadRejects) == 0 && len(r.Failures) == 0 && r.Accepted == r.Jobs
}

// Normalize strips the nondeterministic interpreter stats sub-documents
// (step counts vary with crash-schedule interleaving) and re-marshals
// with sorted keys — the same normalization the server soak tests use.
// Everything else, including every repair decision and crash-validation
// verdict, must match byte-for-byte.
func Normalize(data []byte) (string, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", fmt.Errorf("normalize: %w", err)
	}
	if crash, ok := doc["crash"].(map[string]any); ok {
		delete(crash, "stats")
	}
	if rounds, ok := doc["crash_rounds"].([]any); ok {
		for _, r := range rounds {
			if round, ok := r.(map[string]any); ok {
				delete(round, "stats")
			}
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Baselines computes the sequential ground truth: one cli.Run per
// corpus target, normalized — what every accepted fleet response must
// byte-match. Returns the truth keyed by program name plus the pinned
// request set the scenarios replay.
func Baselines() (map[string]string, []*cli.Request, error) {
	base := loadgen.CorpusRequests()
	want := make(map[string]string, len(base))
	for _, req := range base {
		r := *req
		r.TimeoutMS = 60_000
		rec := obs.New()
		root := rec.StartSpan("job")
		resp, err := cli.Run(&r, root)
		root.End()
		if err != nil {
			return nil, nil, fmt.Errorf("sequential baseline %s: %w", req.Program, err)
		}
		data, err := resp.EncodeJSON()
		if err != nil {
			return nil, nil, err
		}
		norm, err := Normalize(data)
		if err != nil {
			return nil, nil, err
		}
		want[req.Program] = norm
	}
	return want, base, nil
}

// passes builds the replayed request list: `n` passes over the corpus,
// each submission cache-busted by a distinct step limit (the limit is
// far above what any target uses, so it never changes behavior — it
// only changes the request hash, forcing every pass through the full
// repair pipeline instead of the response cache).
func passes(base []*cli.Request, n int) []*cli.Request {
	var out []*cli.Request
	for p := 0; p < n; p++ {
		for _, req := range base {
			r := *req
			r.TimeoutMS = 60_000
			r.StepLimit = req.StepLimit + int64(p)
			out = append(out, &r)
		}
	}
	return out
}

// Scenarios lists the fault-injection scenarios RunAll executes.
func Scenarios() []string {
	return []string{"kill-backend", "drain-backend", "latency-hedge", "reset-connections"}
}

// RunAll computes the sequential ground truth once and runs every
// scenario against it. Any returned error is a harness failure; chaos
// verdicts live in the per-scenario Results.
func RunAll(logw io.Writer) ([]*Result, error) {
	want, base, err := Baselines()
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, name := range Scenarios() {
		res, err := RunScenario(name, want, base, logw)
		if err != nil {
			return out, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, res)
		if logw != nil {
			verdict := "OK"
			if !res.OK() {
				verdict = "FAILED"
			}
			fmt.Fprintf(logw, "chaos: %-18s %s: %d/%d accepted, %d harm, wall %.0f ms, retries conn=%v reject=%v hedges=%v\n",
				name, verdict, res.Accepted, res.Jobs, len(res.Harm), res.WallMS,
				res.Router.RetriesConn, res.Router.RetriesReject, res.Router.Hedges)
		}
	}
	return out, nil
}

// RunScenario executes one named scenario and returns its verdict.
func RunScenario(name string, want map[string]string, base []*cli.Request, logw io.Writer) (*Result, error) {
	switch name {
	case "kill-backend":
		return runKill(want, base)
	case "drain-backend":
		return runDrain(want, base)
	case "latency-hedge":
		return runLatency(want, base)
	case "reset-connections":
		return runReset(want, base)
	default:
		return nil, fmt.Errorf("unknown scenario %q (have %v)", name, Scenarios())
	}
}

// drive replays reqs through the fleet's router, checking every
// accepted response against the ground truth, and folds the round into
// a Result.
func drive(tf *TestFleet, name string, want map[string]string, reqs []*cli.Request, schedule []loadgen.Event) (*Result, error) {
	res := &Result{Scenario: name, Jobs: len(reqs)}
	var mu sync.Mutex // OnResult fires from every loadgen worker concurrently
	check := func(req *cli.Request, o *loadgen.Outcome) {
		mu.Lock()
		defer mu.Unlock()
		if o.Err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %v", req.Program, o.Err))
			return
		}
		if !o.RetryAfterOK {
			res.BadRejects = append(res.BadRejects,
				fmt.Sprintf("%s: a 429/503 along the way carried no parseable Retry-After", req.Program))
		}
		if o.Status != http.StatusOK {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: terminal HTTP %d", req.Program, o.Status))
			return
		}
		res.Accepted++
		got, err := Normalize(o.Body)
		if err != nil {
			res.Harm = append(res.Harm, fmt.Sprintf("%s: unparseable accepted response: %v", req.Program, err))
			return
		}
		if got != want[req.Program] {
			res.Harm = append(res.Harm, fmt.Sprintf("%s: accepted response diverged from sequential run", req.Program))
		}
	}
	rs, err := loadgen.Round(loadgen.Options{
		BaseURL:     tf.RouterURL(),
		Concurrency: 8,
		Requests:    reqs,
		Client:      &http.Client{Timeout: 5 * time.Minute},
		SampleEvery: -1,
		Schedule:    schedule,
		Retry503:    true,
		OnResult:    check,
	})
	// Round returns an error when any job failed; the per-job detail is
	// already in res via OnResult, so only surface harness-level trouble.
	if err != nil && len(res.Failures) == 0 {
		return nil, err
	}
	if rs != nil {
		res.WallMS = rs.WallMS
		res.P99MS = rs.P99MS
		res.Retries429 = rs.Retries429
		res.Retries503 = rs.Retries503
		res.Backends = rs.Backends
	}
	res.Router = tf.Router.StatsSnapshot()
	return res, nil
}

// runKill hard-kills one backend mid-load: a crashed process. Jobs in
// flight on it die at the transport; the router must fail them over and
// the client must see nothing but eventual 200s with correct bytes.
func runKill(want map[string]string, base []*cli.Request) (*Result, error) {
	tf, err := NewTestFleet(FleetOptions{Backends: 3})
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	reqs := passes(base, 2)
	schedule := []loadgen.Event{{AfterDone: len(base) / 2, Run: func() { tf.Kill(1) }}}
	res, err := drive(tf, "kill-backend", want, reqs, schedule)
	if err != nil {
		return nil, err
	}
	// The health poller must have noticed: exactly 2 of 3 available.
	if avail := availableBackends(tf); avail != 2 {
		res.Failures = append(res.Failures,
			fmt.Sprintf("router reports %d available backends after the kill, want 2", avail))
	}
	return res, nil
}

// runDrain SIGTERM-drains one backend mid-load: it keeps answering its
// accepted jobs but 503s new ones. The router must route around it and
// the drain itself must complete with nothing lost.
func runDrain(want map[string]string, base []*cli.Request) (*Result, error) {
	tf, err := NewTestFleet(FleetOptions{Backends: 3})
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	reqs := passes(base, 2)
	var drained <-chan error
	schedule := []loadgen.Event{{AfterDone: len(base) / 2, Run: func() { drained = tf.Drain(0) }}}
	res, err := drive(tf, "drain-backend", want, reqs, schedule)
	if err != nil {
		return nil, err
	}
	if drained == nil {
		res.Failures = append(res.Failures, "drain was never triggered — the schedule did not fire")
		return res, nil
	}
	select {
	case derr := <-drained:
		if derr != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("drain did not complete cleanly: %v", derr))
		}
	case <-time.After(2 * time.Minute):
		res.Failures = append(res.Failures, "drain hung with jobs outstanding")
	}
	return res, nil
}

// runLatency stalls one backend's connections mid-load with hedging
// armed: the router must launch duplicate attempts and serve the fast
// copy — identical bytes by the replay contract — instead of pinning
// clients to the slow node.
func runLatency(want map[string]string, base []*cli.Request) (*Result, error) {
	tf, err := NewTestFleet(FleetOptions{
		Backends:     3,
		WithProxies:  true,
		NoKeepAlives: true,
		HedgeAfter:   150 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	reqs := passes(base, 2)
	schedule := []loadgen.Event{{AfterDone: len(base) / 3, Run: func() {
		tf.Backends[0].Proxy.SetLatency(500 * time.Millisecond)
	}}}
	res, err := drive(tf, "latency-hedge", want, reqs, schedule)
	if err != nil {
		return nil, err
	}
	if res.Router.Hedges == 0 {
		res.Failures = append(res.Failures,
			"a 500ms-stalled backend provoked zero hedged attempts at HedgeAfter=150ms")
	}
	return res, nil
}

// runReset snaps every 3rd connection to one backend mid-load: the
// router's transport retries must absorb the resets without a job lost
// or a byte changed.
func runReset(want map[string]string, base []*cli.Request) (*Result, error) {
	tf, err := NewTestFleet(FleetOptions{Backends: 3, WithProxies: true, NoKeepAlives: true})
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	reqs := passes(base, 2)
	schedule := []loadgen.Event{{AfterDone: len(base) / 3, Run: func() {
		tf.Backends[1].Proxy.SetResetEvery(3)
	}}}
	res, err := drive(tf, "reset-connections", want, reqs, schedule)
	if err != nil {
		return nil, err
	}
	if res.Router.RetriesConn == 0 {
		res.Failures = append(res.Failures,
			"connection resets every 3rd dial provoked zero transport retries — the fault never landed")
	}
	return res, nil
}

// availableBackends reads the router's own /healthz verdict.
func availableBackends(tf *TestFleet) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		avail, err := readAvailable(tf)
		if err == nil && avail < len(tf.Backends) {
			return avail
		}
		if time.Now().After(deadline) {
			if err != nil {
				return -1
			}
			return avail
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func readAvailable(tf *TestFleet) (int, error) {
	resp, err := http.Get(tf.RouterURL() + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var doc struct {
		Available int `json:"available_backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, err
	}
	return doc.Available, nil
}
