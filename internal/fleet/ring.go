// Package fleet is the hippocratesfleet router: a consistent-hash HTTP
// load balancer over N hippocratesd backends. Routing by the request's
// SourceKey — the artifact-cache key, sha256(program \0 source) — keeps
// every replay of one program landing on the same backend, so both the
// artifact cache (parse/analyze/repair pipeline output) and the response
// cache stay hot per node instead of being diluted N ways. The router
// adds what a single daemon cannot give: health-checked failover,
// bounded retries, hedged duplicates for slow same-source replays (safe
// because hippocratesd's replay contract is byte-identical responses),
// and per-backend circuit breaking — all stdlib-only.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerBackend is how many virtual points each backend contributes
// to the hash ring. 64 keeps the keyspace split within a few percent of
// even for small fleets while the ring stays tiny (N*64 entries).
const vnodesPerBackend = 64

// Ring is an immutable consistent-hash ring over backend names. Backend
// unavailability is handled at routing time by skipping ejected names in
// the preference order — never by rebuilding the ring, which would
// re-hash the whole keyspace and dump every backend's warm caches.
type Ring struct {
	points   []ringPoint // sorted by hash
	backends []string
}

type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// NewRing builds the ring. Backend names must be unique and non-empty.
func NewRing(backends []string) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one backend")
	}
	seen := map[string]bool{}
	r := &Ring{backends: append([]string(nil), backends...)}
	for i, b := range r.backends {
		if b == "" {
			return nil, fmt.Errorf("fleet: empty backend name at index %d", i)
		}
		if seen[b] {
			return nil, fmt.Errorf("fleet: duplicate backend %q", b)
		}
		seen[b] = true
		for v := 0; v < vnodesPerBackend; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", b, v)), backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// hash64 is FNV-1a with a murmur-style 64-bit finalizer. Raw FNV-1a
// barely diffuses into the high bits on short inputs, so a backend's
// vnodes would land in one tight band of the ring and ownership would
// collapse onto whichever backend sorts first — the finalizer's
// avalanche restores a uniform spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Backends returns the ring's member names in construction order.
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Order returns every backend in preference order for key: the owner
// (first ring point at or after hash(key)) first, then each remaining
// backend in the order its first vnode appears walking clockwise. The
// caller tries them left to right, skipping ejected ones — failover for
// one key is deterministic and does not disturb any other key's owner.
func (r *Ring) Order(key string) []string {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]string, 0, len(r.backends))
	seen := make([]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(order) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			order = append(order, r.backends[p.backend])
		}
	}
	return order
}
