package fleet

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Breaker thresholds and cooldowns. Three consecutive connection-level
// failures eject a backend; the cooldown doubles on each re-ejection
// (a flapping node backs off further each time) and any success resets
// everything.
const (
	breakerThreshold    = 3
	breakerBaseCooldown = 500 * time.Millisecond
	breakerMaxCooldown  = 15 * time.Second
)

// backend is one hippocratesd node as the router sees it: its address,
// the health poller's latest verdict, and a circuit breaker fed by the
// data path. All fields behind mu; reads are cheap and brief.
type backend struct {
	name string // backend identity (-id), also its ring name
	url  string // e.g. http://127.0.0.1:8081

	mu         sync.Mutex
	healthy    bool // last health probe succeeded and was not draining
	draining   bool // backend said it is draining (503 healthz)
	fails      int  // consecutive connection-level failures
	ejections  int  // lifetime ejection count, drives the cooldown ramp
	ejectedTil time.Time
	lastProbe  time.Time
}

// Available reports whether the data path should try this backend now:
// not breaker-ejected, and not known-unhealthy from the poller. A
// draining backend is unavailable for new work (it would answer 503)
// but is not a breaker event — drain is deliberate, not a fault.
func (b *backend) Available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if time.Now().Before(b.ejectedTil) {
		return false
	}
	return b.healthy && !b.draining
}

// Ejected reports whether the breaker currently holds the backend out.
func (b *backend) Ejected() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Now().Before(b.ejectedTil)
}

// Fail records a connection-level failure (dial refused, reset, i/o
// timeout at the transport). HTTP-level rejections (429/503) are flow
// control, not faults, and must not feed the breaker.
func (b *backend) Fail() (ejected bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails < breakerThreshold {
		return false
	}
	b.fails = 0
	cool := breakerBaseCooldown << b.ejections
	if cool > breakerMaxCooldown || cool <= 0 {
		cool = breakerMaxCooldown
	}
	if b.ejections < 30 {
		b.ejections++
	}
	b.ejectedTil = time.Now().Add(cool)
	return true
}

// Succeed records a successful exchange: breaker state fully resets.
func (b *backend) Succeed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.ejections = 0
	b.ejectedTil = time.Time{}
}

// setHealth stores a health-probe verdict.
func (b *backend) setHealth(healthy, draining bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.healthy = healthy
	b.draining = draining
	b.lastProbe = time.Now()
}

// state snapshots the backend for /healthz reporting.
func (b *backend) state() BackendState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendState{
		Name:     b.name,
		URL:      b.url,
		Healthy:  b.healthy,
		Draining: b.draining,
		Ejected:  time.Now().Before(b.ejectedTil),
	}
}

// BackendState is one backend's row in the router's /healthz document.
type BackendState struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Ejected  bool   `json:"ejected"`
}

// probeHealth performs one GET /healthz against the backend and records
// the verdict. A 200 means healthy; a 503 with a healthz body means the
// backend is up but draining; anything else (including transport errors)
// means unhealthy. Returns the verdict for the caller's metrics.
func (b *backend) probeHealth(client *http.Client) (healthy bool) {
	resp, err := client.Get(b.url + "/healthz")
	if err != nil {
		b.setHealth(false, false)
		return false
	}
	defer resp.Body.Close()
	var doc struct {
		Draining bool `json:"draining"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	switch {
	case resp.StatusCode == http.StatusOK:
		b.setHealth(true, false)
		return true
	case resp.StatusCode == http.StatusServiceUnavailable && doc.Draining:
		// Up, deliberately refusing new work: route around it without
		// feeding the breaker.
		b.setHealth(true, true)
		return false
	default:
		b.setHealth(false, false)
		return false
	}
}
