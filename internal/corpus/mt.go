package corpus

// MTProgram is one concurrent corpus target, wrapped with the
// schedule-level expectations the interleaving explorer checks.
type MTProgram struct {
	*Program
	// MaskedByDefault reports whether the default round-robin
	// interleaving hides the bug (the line-granular-flush masking the
	// publish showcase is built around). Masked programs look clean on a
	// single schedule and need the explorer to surface a buggy one;
	// unmasked programs are buggy under every interleaving.
	MaskedByDefault bool
}

// MTPrograms returns the concurrent corpus targets. They are deliberately
// not part of All(): the single-threaded pipeline, sweeps and paper
// accounting all iterate All(), and these require the threads pipeline
// (core.RunAndRepairMT / schedule.Explore).
func MTPrograms() []*MTProgram {
	return []*MTProgram{
		{
			Program: &Program{
				Name:    "mt-publish",
				Target:  "mt",
				File:    "mt/publish.pmc",
				Entry:   "main",
				WantRet: 42,
				Bugs: []KnownBug{
					{ID: "mt-publish-1", Species: SpeciesIntraFlushFence,
						DevFix: "flush+fence val in the issuing thread", Comparison: "identical"},
					{ID: "mt-publish-2", Species: SpeciesIntraFlushFence,
						DevFix: "flush+fence tag in the issuing thread", Comparison: "identical"},
				},
			},
			MaskedByDefault: true,
		},
		{
			Program: &Program{
				Name:    "pclht-mt",
				Target:  "mt",
				File:    "mt/pclht_mt.pmc",
				Entry:   "main",
				WantRet: 2,
				Bugs: []KnownBug{
					{ID: "pclht-mt-1", Species: SpeciesIntraFlushFence,
						DevFix: "flush+fence key before the used flag", Comparison: "identical"},
					{ID: "pclht-mt-2", Species: SpeciesIntraFlushFence,
						DevFix: "flush+fence val before the used flag", Comparison: "identical"},
					{ID: "pclht-mt-3", Species: SpeciesIntraFence,
						DevFix: "fence after the used flag's flush", Comparison: "identical"},
				},
			},
		},
		{
			Program: &Program{
				Name:    "pmlog-mt",
				Target:  "mt",
				File:    "mt/pmlog_mt.pmc",
				Entry:   "main",
				WantRet: 2,
				Bugs: []KnownBug{
					{ID: "pmlog-mt-1", Species: SpeciesIntraFlushFence,
						DevFix: "flush+fence the slot payload after the store", Comparison: "identical"},
				},
			},
		},
	}
}

// MTByName returns the named concurrent program, or nil.
func MTByName(name string) *MTProgram {
	for _, p := range MTPrograms() {
		if p.Name == name {
			return p
		}
	}
	return nil
}
