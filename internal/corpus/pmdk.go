package corpus

import "hippocrates/internal/pmem"

// devInterproc and devPortable are the two developer-fix descriptions of
// Fig. 3.
const (
	devInterproc = "interprocedural flush+fence (persistent function variant)"
	devPortable  = "interprocedural flush via libpmem (run-time instruction dispatch)"
)

// PMDKPrograms returns the eleven reproduced PMDK issues (§6.1, Fig. 3):
// eight fixed interprocedurally in ways functionally identical to the
// developer fixes, three fixed with intraprocedural CLWBs that are
// functionally equivalent to the developers' more portable libpmem
// flushes.
func PMDKPrograms() []*Program {
	interproc := func(issue int, name, file string, class pmem.BugClass) *Program {
		return &Program{
			Name:    name,
			Target:  "pmdk",
			File:    file,
			Entry:   "main",
			WantRet: 0,
			Bugs: []KnownBug{{
				ID:         name,
				Issue:      issue,
				Class:      class,
				Species:    SpeciesInterproc,
				DevFix:     devInterproc,
				Comparison: "identical",
			}},
		}
	}
	intra := func(issue int, name, file string) *Program {
		return &Program{
			Name:    name,
			Target:  "pmdk",
			File:    file,
			Entry:   "main",
			WantRet: 0,
			Bugs: []KnownBug{{
				ID:         name,
				Issue:      issue,
				Class:      pmem.MissingFlush,
				Species:    SpeciesIntraFlush,
				DevFix:     devPortable,
				Comparison: "equivalent",
			}},
		}
	}
	return []*Program{
		interproc(447, "pmdk-447-list-insert", "pmdk/issue447_list_insert.pmc", pmem.MissingFlush),
		interproc(458, "pmdk-458-heap-zone", "pmdk/issue458_heap_zone.pmc", pmem.MissingFlushFence),
		interproc(459, "pmdk-459-redo-log", "pmdk/issue459_redo_log.pmc", pmem.MissingFlush),
		interproc(460, "pmdk-460-type-num", "pmdk/issue460_type_num.pmc", pmem.MissingFlushFence),
		interproc(461, "pmdk-461-pool-desc", "pmdk/issue461_pool_desc.pmc", pmem.MissingFlush),
		interproc(585, "pmdk-585-buffer-copy", "pmdk/issue585_buffer_copy.pmc", pmem.MissingFlush),
		interproc(942, "pmdk-942-tx-misuse", "pmdk/issue942_tx_misuse.pmc", pmem.MissingFlush),
		interproc(945, "pmdk-945-array-fill", "pmdk/issue945_array_fill.pmc", pmem.MissingFlush),
		intra(452, "pmdk-452-oid-clear", "pmdk/issue452_oid_clear.pmc"),
		intra(940, "pmdk-940-stats-misuse", "pmdk/issue940_stats_misuse.pmc"),
		intra(943, "pmdk-943-flag-misuse", "pmdk/issue943_flag_misuse.pmc"),
	}
}
