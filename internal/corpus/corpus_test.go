package corpus

import (
	"strings"
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

func TestProgramsCompileAndPass(t *testing.T) {
	// Every corpus program must compile and its workload must pass
	// in-memory (the seeded bugs are durability bugs: they corrupt
	// nothing until a crash).
	for _, p := range All() {
		t.Run(p.Name, func(t *testing.T) {
			m, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			mach, err := interp.New(m, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ret, err := mach.Run(p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			if ret != p.WantRet {
				t.Fatalf("%s returned %d, want %d", p.Entry, ret, p.WantRet)
			}
		})
	}
}

func TestSeededBugCountsMatchPaper(t *testing.T) {
	if got := TotalSeededBugs(); got != 23 {
		t.Errorf("total seeded bugs = %d, want the paper's 23", got)
	}
	if got := len(ByTarget("pmdk")); got != 11 {
		t.Errorf("pmdk programs = %d, want 11", got)
	}
	if got := len(PCLHTProgram().Bugs); got != 2 {
		t.Errorf("pclht bugs = %d, want 2", got)
	}
	if got := len(MemcachedProgram().Bugs); got != 10 {
		t.Errorf("memcached bugs = %d, want 10", got)
	}
}

// TestDetectorFindsSeededBugs checks the pmcheck side of §6.1: the
// detector reports exactly the seeded number of unique buggy store sites
// per target.
func TestDetectorFindsSeededBugs(t *testing.T) {
	for _, p := range PaperBuggy() {
		t.Run(p.Name, func(t *testing.T) {
			m := p.MustCompile()
			tr, err := core.TraceModule(m, p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			res := pmcheckCheck(tr)
			if got := res.UniqueSites(); got != len(p.Bugs) {
				t.Errorf("unique buggy sites = %d, want %d\n%s", got, len(p.Bugs), res.Summary())
			}
		})
	}
}

// TestHippocratesFixesAllSeededBugs is the headline §6.1 effectiveness
// result: every one of the 23 bugs is repaired, and re-running the bug
// finder on the repaired program reports nothing.
func TestHippocratesFixesAllSeededBugs(t *testing.T) {
	totalFixedSites := 0
	for _, p := range PaperBuggy() {
		t.Run(p.Name, func(t *testing.T) {
			m := p.MustCompile()
			res, err := core.RunAndRepair(m, p.Entry, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Before.Clean() {
				t.Fatal("expected bugs before repair")
			}
			if !res.Fixed() {
				t.Fatalf("bugs remain after repair:\n%s", res.After.Summary())
			}
			totalFixedSites += res.Before.UniqueSites()
			// The workload still passes on the repaired module.
			mach, err := interp.New(m, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ret, err := mach.Run(p.Entry)
			if err != nil {
				t.Fatalf("repaired program: %v", err)
			}
			if ret != p.WantRet {
				t.Fatalf("repaired program returned %d, want %d", ret, p.WantRet)
			}
			if mach.Track.NumPending() != 0 {
				t.Errorf("repaired program left %d stores non-durable", mach.Track.NumPending())
			}
		})
	}
	if totalFixedSites != 23 {
		t.Errorf("fixed %d unique sites, want 23", totalFixedSites)
	}
}

// TestFig3FixSpecies checks the Fig. 3 accuracy comparison on the eleven
// PMDK bugs: eight interprocedural fixes (functionally identical to the
// developer fixes), three intraprocedural CLWB fixes (functionally
// equivalent to the developers' portable libpmem flushes).
func TestFig3FixSpecies(t *testing.T) {
	identical, equivalent := 0, 0
	for _, p := range ByTarget("pmdk") {
		t.Run(p.Name, func(t *testing.T) {
			m := p.MustCompile()
			res, err := core.RunAndRepair(m, p.Entry, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Fixed() {
				t.Fatalf("not fixed:\n%s", res.After.Summary())
			}
			bug := p.Bugs[0]
			if got := res.Before.Reports[0].Class(); got != bug.Class {
				t.Errorf("bug class = %v, want %v", got, bug.Class)
			}
			for _, fix := range res.Fix.Fixes {
				if !bug.Species.Matches(fix.Kind) {
					t.Errorf("fix kind = %v, want %v (fix: %s)", fix.Kind, bug.Species, fix)
				}
			}
			switch bug.Comparison {
			case "identical":
				identical++
			case "equivalent":
				equivalent++
			}
		})
	}
	if identical != 8 || equivalent != 3 {
		t.Errorf("identical/equivalent = %d/%d, want 8/3", identical, equivalent)
	}
}

// TestFullAAAndTraceAAAgreeOnCorpus is the §6.1 heuristic comparison:
// both marking strategies produce identical fixed binaries on every
// target.
func TestFullAAAndTraceAAAgreeOnCorpus(t *testing.T) {
	for _, p := range PaperBuggy() {
		t.Run(p.Name, func(t *testing.T) {
			mFull := p.MustCompile()
			if _, err := core.RunAndRepair(mFull, p.Entry, core.Options{Marks: core.FullAA}); err != nil {
				t.Fatal(err)
			}
			mTrace := p.MustCompile()
			if _, err := core.RunAndRepair(mTrace, p.Entry, core.Options{Marks: core.TraceAA}); err != nil {
				t.Fatal(err)
			}
			if ir.Print(mFull) != ir.Print(mTrace) {
				t.Error("full-aa and trace-aa fixes differ")
			}
		})
	}
}

func TestRedisBaselineIsClean(t *testing.T) {
	// §6.3: pmemcheck found no bugs in Redis-pmem.
	p := ByName("redis-pmem")
	m := p.MustCompile()
	tr, err := core.TraceModule(m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	res := pmcheckCheck(tr)
	if !res.Clean() {
		t.Errorf("redis-pmem baseline has bugs:\n%s", res.Summary())
	}
}

func TestRedisFlushFreeIsBuggyAndFixable(t *testing.T) {
	p := ByName("redis-flushfree")
	m := p.MustCompile()
	res, err := core.RunAndRepair(m, p.Entry, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.Clean() {
		t.Fatal("flush-free Redis must be buggy")
	}
	if !res.Fixed() {
		t.Fatalf("RedisH-full still buggy:\n%s", res.After.Summary())
	}
	if res.Fix.InterprocFixes() == 0 {
		t.Error("expected some interprocedural fixes in RedisH-full")
	}
}

func TestFlushFreePreludeKeepsFences(t *testing.T) {
	src := FlushFreePrelude()
	if !contains(src, "flush-free build") {
		t.Error("stub missing")
	}
	if !contains(src, "sfence()") {
		t.Error("fences must be kept")
	}
	stubStart := index(src, "void pmem_flush")
	stubEnd := stubStart + index(src[stubStart:], "\n}")
	if contains(src[stubStart:stubEnd], "clwb") {
		t.Error("pmem_flush still flushes")
	}
}

func contains(s, sub string) bool { return index(s, sub) >= 0 }

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFixSpeciesStringsAndMatches(t *testing.T) {
	pairs := []struct {
		s FixSpecies
		k core.FixKind
	}{
		{SpeciesIntraFlush, core.FixIntraFlush},
		{SpeciesIntraFence, core.FixIntraFence},
		{SpeciesIntraFlushFence, core.FixIntraFlushFence},
		{SpeciesInterproc, core.FixInterproc},
	}
	for _, p := range pairs {
		if p.s.String() == "" {
			t.Errorf("species %d has no name", int(p.s))
		}
		if !p.s.Matches(p.k) {
			t.Errorf("%v must match %v", p.s, p.k)
		}
	}
	if SpeciesIntraFlush.Matches(core.FixInterproc) {
		t.Error("cross-species match")
	}
}

func TestProgramLookupsAndSources(t *testing.T) {
	if ByName("no-such-program") != nil {
		t.Error("unknown program lookup must be nil")
	}
	if len(ByTarget("redis")) != 2 {
		t.Error("redis target must have two builds")
	}
	ff := ByName("redis-flushfree")
	if !strings.Contains(ff.Source(), "flush-free build") {
		t.Error("flush-free source must embed the stubbed prelude")
	}
	pm := ByName("redis-pmem")
	if strings.Contains(pm.Source(), "flush-free build") {
		t.Error("baseline source must keep the real prelude")
	}
	if len(PaperBuggy()) != 13 { // 11 pmdk programs + pclht + memcached
		t.Errorf("paper buggy programs = %d", len(PaperBuggy()))
	}
}
