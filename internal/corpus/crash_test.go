package corpus

import (
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
)

// TestCrashImagesBeforeAndAfterRepair is the crash-consistency ground
// truth behind the detector: in every buggy target, a crash at the end of
// the workload (worst case: nothing non-durable reached PM) loses data;
// after Hippocrates repairs the program, the post-crash image is
// byte-identical to the in-memory PM state.
func TestCrashImagesBeforeAndAfterRepair(t *testing.T) {
	for _, p := range All() {
		if p.Target == "redis" || len(p.Bugs) == 0 {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			// Buggy build: the worst-case crash image differs from the
			// program's view of PM.
			buggy := p.MustCompile()
			machB, err := interp.New(buggy, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := machB.Run(p.Entry); err != nil {
				t.Fatal(err)
			}
			if d := pmem.DiffPM(machB.CrashImage(nil), machB.Mem); d == 0 {
				t.Error("buggy build lost no bytes in the worst-case crash image")
			}

			// Repaired build: nothing volatile remains.
			fixed := p.MustCompile()
			if _, err := core.RunAndRepair(fixed, p.Entry, core.Options{}); err != nil {
				t.Fatal(err)
			}
			machF, err := interp.New(fixed, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := machF.Run(p.Entry); err != nil {
				t.Fatal(err)
			}
			if d := pmem.DiffPM(machF.CrashImage(nil), machF.Mem); d != 0 {
				t.Errorf("repaired build still loses %d byte(s) in a crash", d)
			}
		})
	}
}

// TestPCLHTCrashRecovery runs the P-CLHT recovery check against crash
// images: the buggy index loses committed updates, the repaired one keeps
// them all.
func TestPCLHTCrashRecovery(t *testing.T) {
	p := PCLHTProgram()
	runAndRecover := func(m *ir.Module) uint64 {
		t.Helper()
		mach, err := interp.New(m, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ret, err := mach.Run(p.Entry); err != nil || ret != 0 {
			t.Fatalf("workload: ret=%d err=%v", ret, err)
		}
		img := mach.CrashImage(nil)
		rec, err := interp.New(m, interp.Options{Memory: img, ResumePM: true})
		if err != nil {
			t.Fatal(err)
		}
		// The promise entry takes the number of durability points passed;
		// a crash at the end of the workload has passed them all.
		got, err := rec.Run("crash_check", uint64(mach.Checkpoints()))
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		return got
	}
	buggy := p.MustCompile()
	if got := runAndRecover(buggy); got == 0 {
		t.Error("buggy P-CLHT recovered losslessly from the crash image")
	}
	fixed := p.MustCompile()
	if _, err := core.RunAndRepair(fixed, p.Entry, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := runAndRecover(fixed); got != 0 {
		t.Errorf("repaired P-CLHT lost data across the crash: crash_check = %d", got)
	}
}
