package corpus

import (
	"errors"
	"math/rand"
	"testing"

	"hippocrates/internal/interp"
	"hippocrates/internal/pmem"
)

// TestCowImagesMatchDeepClones is the fast-path equivalence gate over
// the whole corpus: for sampled crash points of every crashsim-able
// target, the copy-on-write image a captured CrashState's builder
// produces must be byte-identical to the deep-clone reference image a
// dedicated crash-at-event re-execution builds (CrashImageCuts), for the
// corner schedules and a seeded sample of interior ones. It runs under
// -race in `make verify`, so the frozen-base sharing between captures
// and builder overlays is also exercised for data races.
func TestCowImagesMatchDeepClones(t *testing.T) {
	for _, p := range crashsimTargets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			mod := p.MustCompile()

			// Probe: learn the event count (and renumber once).
			probe, err := interp.New(mod, interp.Options{StepLimit: 50_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := probe.Run(p.Entry); err != nil {
				t.Fatalf("workload: %v", err)
			}
			total := probe.PMEvents()

			// Sample up to 8 crash points, endpoints included.
			var points []int
			if total <= 8 {
				for k := 1; k <= total; k++ {
					points = append(points, k)
				}
			} else {
				for i := 0; i < 8; i++ {
					points = append(points, 1+i*(total-1)/7)
				}
			}

			// One capture run snapshots every sampled point.
			captures := make(map[int]*pmem.CrashState, len(points))
			want := make(map[int]bool, len(points))
			for _, k := range points {
				want[k] = true
			}
			var cm *interp.Machine
			cm, err = interp.New(mod, interp.Options{
				StepLimit: 50_000_000,
				OnPMEvent: func(k int, _ interp.PMEventKind) error {
					if want[k] {
						captures[k] = cm.CaptureCrashState()
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cm.Run(p.Entry); err != nil {
				t.Fatalf("capture run: %v", err)
			}

			rng := rand.New(rand.NewSource(42))
			for _, k := range points {
				cs := captures[k]
				if cs == nil {
					t.Fatalf("no capture at event %d", k)
				}
				// Reference machine: re-execute to the same boundary.
				ref, err := interp.New(mod, interp.Options{StepLimit: 50_000_000, CrashAtEvent: k})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ref.Run(p.Entry); !errors.Is(err, interp.ErrSimulatedCrash) {
					t.Fatalf("crash-at-event %d: err = %v, want simulated crash", k, err)
				}

				sizes := make([]int, len(cs.Lines))
				for i, pl := range cs.Lines {
					sizes[i] = len(pl.Stores)
				}
				builder := cs.NewBuilder()
				schedules := [][]int{make([]int, len(sizes)), sizes}
				for n := 0; n < 4; n++ {
					cuts := make([]int, len(sizes))
					for i := range cuts {
						cuts[i] = rng.Intn(sizes[i] + 1)
					}
					schedules = append(schedules, cuts)
				}
				for _, cuts := range schedules {
					builder.Seek(cuts)
					got := builder.Image()
					wantImg := ref.CrashImageCuts(cuts)
					if d := pmem.DiffPM(got, wantImg); d != 0 {
						t.Fatalf("event %d cuts %v: COW image differs from deep clone in %d PM byte(s)", k, cuts, d)
					}
					if !pmem.EqualRange(got, wantImg, pmem.PMBase, pmem.LineSize) {
						t.Fatalf("event %d cuts %v: metadata line differs", k, cuts)
					}
				}
			}
		})
	}
}
