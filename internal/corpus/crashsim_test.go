package corpus

import (
	"strings"
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/crashsim"
)

// crashsimTargets returns every corpus program the crash-injection engine
// can judge: targets with seeded bugs and at least one recovery entry.
// The redis ports are excluded — they model flush-free persistency (eADR),
// where unflushed stores are not bugs and the trace carries no evidence
// for the schedule enumerator to work with.
func crashsimTargets() []*Program {
	var out []*Program
	for _, p := range All() {
		if strings.HasPrefix(p.Name, "redis") || len(p.Bugs) == 0 {
			continue
		}
		out = append(out, p)
	}
	return out
}

// TestCrashsimBuggyFailsRepairedPasses is the do-no-harm acceptance gate:
// on every non-redis target with seeded bugs, at least one injected crash
// schedule must violate the buggy build's recovery invariants, and after
// Hippocrates repairs the module, every enumerated and sampled schedule
// must recover cleanly.
func TestCrashsimBuggyFailsRepairedPasses(t *testing.T) {
	for _, p := range crashsimTargets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			opts := crashsim.Options{
				Entry:     p.Entry,
				MaxPoints: 48,
				MaxImages: 8,
				StepLimit: 50_000_000,
			}

			buggy, err := crashsim.Validate(p.MustCompile(), opts)
			if err != nil {
				t.Fatalf("buggy validate: %v", err)
			}
			if buggy.Passed() {
				t.Fatalf("buggy build survived all %d schedules over %d crash points; the seeded bugs have no bite",
					buggy.Schedules, buggy.Points)
			}

			fixed := p.MustCompile()
			pr, err := core.RunAndRepair(fixed, p.Entry, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !pr.Fixed() {
				t.Fatalf("repair incomplete:\n%s", pr.After.Summary())
			}
			rep, err := crashsim.Validate(fixed, opts)
			if err != nil {
				t.Fatalf("repaired validate: %v", err)
			}
			if !rep.Passed() {
				t.Fatalf("repaired build failed %d crash schedule(s); first: %s",
					len(rep.Failures), rep.Failures[0])
			}
			if rep.Points < 1 || rep.Schedules < 1 {
				t.Fatalf("degenerate validation: %d points, %d schedules", rep.Points, rep.Schedules)
			}
		})
	}
}

// TestCrashsimMidRunFailures pins the engine's reason for existing: for
// the stateful extension targets the buggy build must fail at a crash
// point strictly before the end of the workload (a mid-run schedule, not
// just the final image), proving the injector explores interior states.
func TestCrashsimMidRunFailures(t *testing.T) {
	for _, name := range []string{"pclht", "nvtree", "pmlog"} {
		p := ByName(name)
		if p == nil {
			t.Fatalf("no corpus program %q", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep, err := crashsim.Validate(p.MustCompile(), crashsim.Options{
				Entry:     p.Entry,
				MaxPoints: 64,
				MaxImages: 8,
				StepLimit: 50_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			mid := false
			for _, f := range rep.Failures {
				if f.Event < rep.TotalEvents {
					mid = true
					break
				}
			}
			if !mid {
				t.Errorf("no mid-run failure among %d failure(s) over %d events",
					len(rep.Failures), rep.TotalEvents)
			}
		})
	}
}
