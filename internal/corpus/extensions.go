package corpus

// ExtensionPrograms returns corpus targets beyond the paper's evaluation:
// additional PM data structures in the spirit of the systems the paper
// surveys (§8 — persistent trees like NV-Tree, transactional logging like
// Atlas/libpmemobj transactions). They exercise deeper call stacks and
// ordering-heavier write paths than the §6.1 targets and are validated by
// their own tests; they do not count toward the paper's 23 bugs.
func ExtensionPrograms() []*Program {
	return []*Program{
		{
			Name:    "nvtree",
			Target:  "nvtree",
			File:    "nvtree/nvtree.pmc",
			Entry:   "main",
			WantRet: 0,
			Bugs: []KnownBug{
				{ID: "nvtree-1-leaf-entry"},
				{ID: "nvtree-2-sibling-link"},
				{ID: "nvtree-3-count-publish"},
			},
		},
		{
			Name:    "pmlog",
			Target:  "pmlog",
			File:    "pmlog/pmlog.pmc",
			Entry:   "main",
			WantRet: 0,
			Bugs: []KnownBug{
				{ID: "pmlog-1-undo-capture"},
				{ID: "pmlog-2-commit-mark"},
			},
		},
	}
}
