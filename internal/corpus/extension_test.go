package corpus

import (
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

// runCrashCheck runs the workload, crashes with nothing extra reaching PM,
// and runs the program's crash_check entry on the image.
func runCrashCheck(t *testing.T, m *ir.Module, entry string) uint64 {
	t.Helper()
	mach, err := interp.New(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ret, err := mach.Run(entry); err != nil || ret != 0 {
		t.Fatalf("workload: ret=%d err=%v", ret, err)
	}
	rec, err := interp.New(m, interp.Options{Memory: mach.CrashImage(nil), ResumePM: true})
	if err != nil {
		t.Fatal(err)
	}
	// A crash at the end of the workload has passed every durability point.
	got, err := rec.Run("crash_check", uint64(mach.Checkpoints()))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	return got
}

// TestExtensionTargets validates the beyond-the-paper corpus programs
// (NV-Tree-style B+-tree, undo-log transactions): the detector finds the
// seeded bug count, Hippocrates repairs everything, and the crash-recovery
// invariants flip from broken to intact.
func TestExtensionTargets(t *testing.T) {
	for _, p := range ExtensionPrograms() {
		t.Run(p.Name, func(t *testing.T) {
			// Detector: seeded site count.
			m := p.MustCompile()
			tr, err := core.TraceModule(m, p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			res := pmcheckCheck(tr)
			if got := res.UniqueSites(); got != len(p.Bugs) {
				t.Errorf("unique buggy sites = %d, want %d\n%s", got, len(p.Bugs), res.Summary())
			}

			// The buggy build corrupts its recovery invariant.
			if got := runCrashCheck(t, p.MustCompile(), p.Entry); got == 0 {
				t.Error("buggy build recovered losslessly; the seeded bugs have no bite")
			}

			// Repair and revalidate.
			fixed := p.MustCompile()
			pr, err := core.RunAndRepair(fixed, p.Entry, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !pr.Fixed() {
				t.Fatalf("repair incomplete:\n%s", pr.After.Summary())
			}
			if got := runCrashCheck(t, fixed, p.Entry); got != 0 {
				t.Errorf("repaired build failed crash_check: %d", got)
			}
		})
	}
}

// TestExtensionAAAgreement extends the §6.1 Full-AA/Trace-AA comparison to
// the extension targets.
func TestExtensionAAAgreement(t *testing.T) {
	for _, p := range ExtensionPrograms() {
		t.Run(p.Name, func(t *testing.T) {
			mFull := p.MustCompile()
			if _, err := core.RunAndRepair(mFull, p.Entry, core.Options{Marks: core.FullAA}); err != nil {
				t.Fatal(err)
			}
			mTrace := p.MustCompile()
			if _, err := core.RunAndRepair(mTrace, p.Entry, core.Options{Marks: core.TraceAA}); err != nil {
				t.Fatal(err)
			}
			if ir.Print(mFull) != ir.Print(mTrace) {
				t.Error("full-aa and trace-aa fixes differ")
			}
		})
	}
}
