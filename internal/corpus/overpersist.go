package corpus

// OverpersistPrograms returns the over-persistence microbenchmarks:
// clean programs (no seeded bugs, nothing for either detector to
// report) that each carry one provably-removable flush or fence —
// the showcase inputs for the repair-to-optimize pass in
// internal/optimize. Each declares recovery entries so the pass can
// prove its edits harmless by crash-schedule verdict identity, and
// each shape targets one candidate source: doubled flush and doubled
// fence (dynamic trace evidence), same-line flush pair (structural
// coalesce), and the join-point fence (structural sink).
func OverpersistPrograms() []*Program {
	return []*Program{
		{
			Name:    "overpersist-double-flush",
			Target:  "overpersist",
			File:    "overpersist/double_flush.pmc",
			Entry:   "main",
			WantRet: 0,
		},
		{
			Name:    "overpersist-flush-merge",
			Target:  "overpersist",
			File:    "overpersist/flush_merge.pmc",
			Entry:   "main",
			WantRet: 0,
		},
		{
			Name:    "overpersist-double-fence",
			Target:  "overpersist",
			File:    "overpersist/double_fence.pmc",
			Entry:   "main",
			WantRet: 0,
		},
		{
			Name:    "overpersist-sink-fence",
			Target:  "overpersist",
			File:    "overpersist/sink_fence.pmc",
			Entry:   "main",
			WantRet: 0,
		},
	}
}
