package corpus

import (
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/interp"
	"hippocrates/internal/trace"
)

// TestMTSmoke is the concurrent corpus gate (`make mt-smoke`): for every
// MT program the buggy build must fail under at least one explored
// interleaving (crash validation included), the repaired build must pass
// crash validation under every explored interleaving, and a buggy
// schedule id must replay byte-identically.
func TestMTSmoke(t *testing.T) {
	for _, p := range MTPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			mod := p.MustCompile()
			opts := core.Options{MaxSchedules: 16}

			ex, err := core.ExploreModule(mod, p.Entry, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range ex.Runs {
				if r.Ret != p.WantRet {
					t.Fatalf("schedule %s: ret = %d, want %d", r.ID, r.Ret, p.WantRet)
				}
			}
			bad := ex.FirstBuggy()
			if bad == nil {
				t.Fatalf("no explored interleaving exposes the bug (%d explored)", ex.Explored)
			}
			if p.MaskedByDefault {
				if ex.Runs[0].Buggy() {
					t.Fatalf("default round-robin schedule %s unexpectedly buggy; masking is the point of %s", ex.Runs[0].ID, p.Name)
				}
				if bad.ID == ex.Runs[0].ID {
					t.Fatalf("FirstBuggy returned the default schedule")
				}
			} else if !ex.Runs[0].Buggy() {
				t.Fatalf("default schedule should already expose %s", p.Name)
			}

			// The buggy build must fail crash validation under the buggy
			// interleaving: that is the harm the repair exists to remove.
			rep, err := crashsim.Validate(mod, crashsim.Options{
				Entry:     p.Entry,
				Schedule:  bad.Choices,
				MaxPoints: 12,
				MaxImages: 4,
				Workers:   1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Passed() {
				t.Fatalf("buggy %s passed crash validation under schedule %s", p.Name, bad.ID)
			}

			// Schedule ids are replayable coordinates: re-running the buggy
			// run's choices must reproduce its trace byte-for-byte.
			tr := &trace.Trace{Program: mod.Name}
			m, err := interp.New(mod, interp.Options{Trace: tr, Schedule: bad.Choices})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(p.Entry); err != nil {
				t.Fatalf("replaying schedule %s: %v", bad.ID, err)
			}
			if got, want := interp.ScheduleID(replayChoices(m)), bad.ID; got != want {
				t.Fatalf("replay schedule id = %s, want %s", got, want)
			}
			if got, want := tr.String(), bad.Trace.String(); got != want {
				t.Fatalf("replay of schedule %s diverged:\n--- replay ---\n%s\n--- original ---\n%s", bad.ID, got, want)
			}

			// Repair on a fresh module, then the full acceptance bar: every
			// explored interleaving of the repaired build must survive its
			// whole crash sweep.
			fresh := p.MustCompile()
			opts.CrashCheck = &crashsim.Options{MaxPoints: 12, MaxImages: 4, Workers: 1}
			res, err := core.RunAndRepairMT(fresh, p.Entry, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Before.Clean() {
				t.Fatalf("union detector found nothing before repair")
			}
			if !res.Fixed() {
				for _, c := range res.Crash {
					if !c.Report.Passed() {
						t.Errorf("repaired %s fails crash validation under schedule %s", p.Name, c.ID)
					}
				}
				t.Fatalf("repair did not fix %s: %d reports remain", p.Name, len(res.After.Reports))
			}
			if got, want := len(res.Crash), res.FinalExploration().Explored; got != want {
				t.Fatalf("crash sweeps = %d, want one per explored schedule (%d)", got, want)
			}
		})
	}
}

func replayChoices(m *interp.Machine) []int {
	ds := m.Decisions()
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = d.Chosen
	}
	return out
}
