package corpus

import (
	"errors"
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

// crashTargets are the corpus programs carrying an invariant_check entry:
// a consistency predicate that must hold in a crash image taken at ANY
// durability point of a correct build.
func crashTargets() []*Program {
	return []*Program{PCLHTProgram(), ByName("nvtree"), ByName("pmlog")}
}

// TestExhaustiveCrashConsistency is the Yat/Agamotto-style validation: the
// repaired program is crashed at every single durability point, and the
// recovery invariant must hold in each resulting crash image. The buggy
// builds must violate the invariant at one point or more (except where the
// seeded bug only loses data without breaking consistency predicates).
func TestExhaustiveCrashConsistency(t *testing.T) {
	for _, p := range crashTargets() {
		t.Run(p.Name, func(t *testing.T) {
			fixed := p.MustCompile()
			if _, err := core.RunAndRepair(fixed, p.Entry, core.Options{}); err != nil {
				t.Fatal(err)
			}
			// One clean run to learn the durability-point count.
			probe, err := interp.New(fixed, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ret, err := probe.Run(p.Entry); err != nil || ret != p.WantRet {
				t.Fatalf("clean run: ret=%d err=%v", ret, err)
			}
			n := probe.Checkpoints()
			if n < 3 {
				t.Fatalf("only %d durability points; workload too small for exhaustive crashing", n)
			}
			for k := 1; k <= n; k++ {
				if bad := crashAndCheck(t, fixed, p.Entry, k); bad != 0 {
					t.Errorf("crash at durability point %d/%d: invariant violated (%d)", k, n, bad)
				}
			}
			// The buggy build must break the invariant somewhere. pclht and
			// pmlog are exempt: their seeded bugs lose data without breaking
			// the eviction-safe structural predicates, and the loss is caught
			// by the checkpoint-anchored crash_check tests instead.
			buggy := p.MustCompile()
			broken := false
			for k := 1; k <= n && !broken; k++ {
				if crashAndCheck(t, buggy, p.Entry, k) != 0 {
					broken = true
				}
			}
			if p.Name != "pclht" && p.Name != "pmlog" && !broken {
				t.Error("buggy build survived every crash point; seeded bugs have no bite")
			}
		})
	}
}

// crashAndCheck crashes the program at the k-th durability point and runs
// invariant_check on the resulting image.
func crashAndCheck(t *testing.T, m *ir.Module, entry string, k int) uint64 {
	t.Helper()
	mach, err := interp.New(m, interp.Options{CrashAtCheckpoint: k})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mach.Run(entry)
	if !errors.Is(err, interp.ErrSimulatedCrash) {
		t.Fatalf("crash %d: err = %v, want simulated crash", k, err)
	}
	rec, err := interp.New(m, interp.Options{Memory: mach.CrashImage(nil), ResumePM: true})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := rec.Run("invariant_check")
	if err != nil {
		t.Fatalf("crash %d: invariant_check: %v", k, err)
	}
	return bad
}
