package corpus

import "hippocrates/internal/pmem"

// PCLHTProgram returns the P-CLHT index with its two seeded bugs (§6.1:
// "2 previously undocumented bugs in P-CLHT").
func PCLHTProgram() *Program {
	return &Program{
		Name:    "pclht",
		Target:  "pclht",
		File:    "pclht/clht.pmc",
		Entry:   "main",
		WantRet: 0,
		Bugs: []KnownBug{
			{ID: "pclht-1", Class: pmem.MissingFlush, Species: SpeciesInterproc},
			{ID: "pclht-2", Class: pmem.MissingFlush, Species: SpeciesIntraFlush},
		},
	}
}

// MemcachedProgram returns memcached-pm with its ten seeded bugs (§6.1:
// "10 previously undocumented bugs in memcached-pm").
func MemcachedProgram() *Program {
	bug := func(id string) KnownBug { return KnownBug{ID: id} }
	return &Program{
		Name:    "memcached",
		Target:  "memcached",
		File:    "memcached/memcached.pmc",
		Entry:   "main",
		WantRet: 0,
		Bugs: []KnownBug{
			bug("mc-1-hash-chain"), bug("mc-2-lru-head"), bug("mc-3-unlink-splice"),
			bug("mc-4-cas-copy"), bug("mc-5-fetched-flag"), bug("mc-6-touch-exptime"),
			bug("mc-7-cas-id"), bug("mc-8-curr-items"), bug("mc-9-evictions"),
			bug("mc-10-slab-free"),
		},
	}
}

// RedisPrograms returns the two Redis builds of §6.3: the hand-persisted
// baseline (clean under pmcheck, as the paper found Redis-pmem to be) and
// the flush-free build Hippocrates repairs.
func RedisPrograms() []*Program {
	return []*Program{
		{
			Name:    "redis-pmem",
			Target:  "redis",
			File:    "redis/redis.pmc",
			Entry:   "trace_main",
			WantRet: 0,
		},
		{
			Name:      "redis-flushfree",
			Target:    "redis",
			File:      "redis/redis.pmc",
			Entry:     "trace_main",
			WantRet:   0,
			FlushFree: true,
		},
	}
}
