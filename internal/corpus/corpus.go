// Package corpus holds the evaluation targets: pmc ports of the systems
// the paper evaluates Hippocrates on (§6). Each program seeds the same
// species of durability bug the paper reproduced:
//
//   - pmdk: eleven reproduced PMDK issues over a mini-libpmem/libpmemobj
//     (Fig. 1 / Fig. 3),
//   - pclht: RECIPE's P-CLHT persistent cache-line hash table with the
//     two previously undocumented bugs,
//   - memcached: the memcached-pm slab cache core with its ten bugs,
//   - redis: the Redis-pmem key-value store core, in a hand-persisted
//     baseline build and a flush-free build (flushes removed, fences
//     kept) for the §6.3 case study.
//
// Sources are embedded .pmc files; every program compiles against the
// mini-libpmem prelude.
package corpus

import (
	"embed"
	"fmt"
	"strings"

	"hippocrates/internal/core"
	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
	"hippocrates/internal/pmem"
)

//go:embed pmdk/*.pmc pclht/*.pmc memcached/*.pmc redis/*.pmc nvtree/*.pmc pmlog/*.pmc overpersist/*.pmc mt/*.pmc
var files embed.FS

// FixSpecies is the expected shape of a Hippocrates fix for a known bug
// (the "Hippocrates fix" column of Fig. 3).
type FixSpecies int

// The fix species.
const (
	SpeciesIntraFlush FixSpecies = iota
	SpeciesIntraFence
	SpeciesIntraFlushFence
	SpeciesInterproc
)

func (s FixSpecies) String() string {
	switch s {
	case SpeciesIntraFlush:
		return "intraprocedural flush (clwb)"
	case SpeciesIntraFence:
		return "intraprocedural fence"
	case SpeciesIntraFlushFence:
		return "intraprocedural flush+fence"
	case SpeciesInterproc:
		return "interprocedural flush+fence"
	}
	return fmt.Sprintf("species(%d)", int(s))
}

// Matches reports whether an applied fix has this species.
func (s FixSpecies) Matches(k core.FixKind) bool {
	switch s {
	case SpeciesIntraFlush:
		return k == core.FixIntraFlush
	case SpeciesIntraFence:
		return k == core.FixIntraFence
	case SpeciesIntraFlushFence:
		return k == core.FixIntraFlushFence
	case SpeciesInterproc:
		return k == core.FixInterproc
	}
	return false
}

// KnownBug documents one seeded bug and the paper-recorded comparison
// between the Hippocrates fix and the developer fix.
type KnownBug struct {
	// ID names the bug, e.g. "pmdk-447".
	ID string
	// Issue is the PMDK issue number (0 for non-PMDK targets).
	Issue int
	// Class is the expected detector classification.
	Class pmem.BugClass
	// Species is the fix species Hippocrates is expected to produce.
	Species FixSpecies
	// DevFix describes the developer's fix (Fig. 3).
	DevFix string
	// Comparison is the Fig. 3 qualitative verdict: "identical" or
	// "equivalent".
	Comparison string
}

// Program is one runnable corpus target.
type Program struct {
	// Name identifies the program, e.g. "pmdk-447-list-insert".
	Name string
	// Target is the evaluation system: pmdk, pclht, memcached, redis.
	Target string
	// File is the embedded source path.
	File string
	// Entry is the function the unit workload starts at.
	Entry string
	// WantRet is the expected return value of a successful run.
	WantRet uint64
	// Bugs are the seeded bugs, in report order.
	Bugs []KnownBug
	// FlushFree builds the program against the flush-free prelude
	// (pmem_flush stubbed out, fences kept — §6.3 methodology).
	FlushFree bool
}

func mustRead(path string) string {
	b, err := files.ReadFile(path)
	if err != nil {
		panic("corpus: " + err.Error())
	}
	return string(b)
}

// Prelude returns the mini-libpmem/libpmemobj source.
func Prelude() string { return mustRead("pmdk/libpmem.pmc") }

// FlushFreePrelude returns the prelude with cache-line flushing removed
// but every fence kept, exactly as §6.3 prepares Redis for Hippocrates:
// "We first remove all flushes in Redis-pmem. We leave memory fences,
// however, to preserve semantic ordering information."
func FlushFreePrelude() string {
	src := Prelude()
	stub := `void pmem_flush(byte *addr, int len) {
	// flush-free build: flushes removed, fences kept (see §6.3)
}`
	start := strings.Index(src, "void pmem_flush")
	if start < 0 {
		panic("corpus: prelude lost pmem_flush")
	}
	end := strings.Index(src[start:], "\n}")
	if end < 0 {
		panic("corpus: prelude pmem_flush unterminated")
	}
	return src[:start] + stub + src[start+end+2:]
}

// Source assembles the full compilable source of a program.
func (p *Program) Source() string {
	prelude := Prelude()
	if p.FlushFree {
		prelude = FlushFreePrelude()
	}
	return prelude + "\n" + mustRead(p.File)
}

// Compile builds the program's module.
func (p *Program) Compile() (*ir.Module, error) {
	m, err := lang.Compile(p.Name+".pmc", p.Source())
	if err != nil {
		return nil, fmt.Errorf("corpus %s: %w", p.Name, err)
	}
	return m, nil
}

// MustCompile is Compile that panics on error (the sources are tested).
func (p *Program) MustCompile() *ir.Module {
	m, err := p.Compile()
	if err != nil {
		panic(err)
	}
	return m
}

// ByName returns the named program, or nil.
func ByName(name string) *Program {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ByTarget returns the programs of one evaluation target.
func ByTarget(target string) []*Program {
	var out []*Program
	for _, p := range All() {
		if p.Target == target {
			out = append(out, p)
		}
	}
	return out
}

// PaperTargets are the evaluation targets of §6.1 whose seeded bug counts
// reproduce the paper's 23 (Redis is the §6.3 performance target;
// everything else is an extension beyond the paper's scope).
var PaperTargets = []string{"pmdk", "pclht", "memcached"}

// All returns every corpus program, paper targets first.
func All() []*Program {
	all := []*Program{}
	all = append(all, PMDKPrograms()...)
	all = append(all, PCLHTProgram())
	all = append(all, MemcachedProgram())
	all = append(all, RedisPrograms()...)
	all = append(all, ExtensionPrograms()...)
	all = append(all, OverpersistPrograms()...)
	return all
}

// PaperBuggy returns the buggy programs of the paper's §6.1 targets.
func PaperBuggy() []*Program {
	var out []*Program
	for _, t := range PaperTargets {
		out = append(out, ByTarget(t)...)
	}
	return out
}

// TotalSeededBugs sums the seeded-bug counts over the paper's buggy
// targets (pmdk + pclht + memcached): 23.
func TotalSeededBugs() int {
	n := 0
	for _, p := range PaperBuggy() {
		n += len(p.Bugs)
	}
	return n
}
