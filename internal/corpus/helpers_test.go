package corpus

import (
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

func pmcheckCheck(tr *trace.Trace) *pmcheck.Result { return pmcheck.Check(tr) }
