module hippocrates

go 1.24
