GO ?= go

.PHONY: build test vet verify agreement bench metrics-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# agreement runs the static/dynamic agreement harness on its own: superset
# soundness on every corpus target and 250 generated programs, plus
# static-driven repair leaving both detectors clean.
agreement:
	$(GO) test ./internal/static/ -run 'TestCorpusAgreement|TestCorpusStaticRepairBothClean|TestProgenAgreement' -v

# metrics-smoke repairs testdata/metrics_smoke.pmc with every telemetry
# flag on and validates the exported JSON against the schemas checked in
# under internal/obs/schema/ (plus pipeline-coverage and fix-count checks
# in TestValidateSmokeArtifacts).
metrics-smoke:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/hippocrates -metrics $$dir/metrics.json -spans $$dir/spans.json -audit testdata/metrics_smoke.pmc >$$dir/out.txt && \
	OBS_SMOKE_DIR=$$dir $(GO) test ./internal/obs/ -run TestValidateSmokeArtifacts -count=1; \
	status=$$?; rm -rf $$dir; exit $$status

# verify is the tier-1 gate (referenced from ROADMAP.md): vet, build, the
# full suite under the race detector, the agreement harness, and the
# telemetry smoke test.
verify: vet build
	$(GO) test -race ./...
	$(MAKE) agreement
	$(MAKE) metrics-smoke

bench:
	$(GO) test -bench=. -benchmem ./...
