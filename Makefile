GO ?= go

.PHONY: build test vet verify agreement bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# agreement runs the static/dynamic agreement harness on its own: superset
# soundness on every corpus target and 250 generated programs, plus
# static-driven repair leaving both detectors clean.
agreement:
	$(GO) test ./internal/static/ -run 'TestCorpusAgreement|TestCorpusStaticRepairBothClean|TestProgenAgreement' -v

# verify is the tier-1 gate (referenced from ROADMAP.md): vet, build, the
# full suite under the race detector, and the agreement harness.
verify: vet build
	$(GO) test -race ./...
	$(MAKE) agreement

bench:
	$(GO) test -bench=. -benchmem ./...
