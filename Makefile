GO ?= go

.PHONY: build test vet verify agreement bench metrics-smoke crash-smoke server-smoke optimize-smoke fleet-smoke incremental-smoke mt-smoke bench-server bench-optimize bench-fleet bench-incremental bench-mt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# agreement runs the static/dynamic agreement harness on its own: superset
# soundness on every corpus target and 250 generated programs, plus
# static-driven repair leaving both detectors clean.
agreement:
	$(GO) test ./internal/static/ -run 'TestCorpusAgreement|TestCorpusStaticRepairBothClean|TestProgenAgreement' -v

# metrics-smoke repairs testdata/metrics_smoke.pmc with every telemetry
# flag on and validates the exported JSON against the schemas checked in
# under internal/obs/schema/ (plus pipeline-coverage and fix-count checks
# in TestValidateSmokeArtifacts). It then gates the service telemetry:
# the Prometheus writer/linter suite, the golden test pinning the exact
# /metrics exposition format, and flight-recorder schema validation.
metrics-smoke:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/hippocrates -metrics $$dir/metrics.json -spans $$dir/spans.json -audit testdata/metrics_smoke.pmc >$$dir/out.txt && \
	OBS_SMOKE_DIR=$$dir $(GO) test ./internal/obs/ -run TestValidateSmokeArtifacts -count=1; \
	status=$$?; rm -rf $$dir; exit $$status
	$(GO) test ./internal/obs/ -run 'TestWriteProm|TestLintProm|TestPromName' -count=1
	$(GO) test ./internal/server/ -run 'TestPromGolden|TestFlightRecorder' -count=1

# crash-smoke proves the crash-injection validation engine end to end on
# testdata/crash_smoke.pmc: the buggy build must FAIL `pmvm -crash`
# (a mid-run schedule loses the published payload), and
# `hippocrates -crashcheck` must repair it and revalidate every crash
# schedule cleanly.
crash-smoke:
	@if $(GO) run ./cmd/pmvm -crash testdata/crash_smoke.pmc >/dev/null 2>&1; then \
		echo "crash-smoke: buggy build unexpectedly survived -crash"; exit 1; \
	else \
		echo "crash-smoke: buggy build fails -crash as expected"; \
	fi
	$(GO) run ./cmd/hippocrates -crashcheck testdata/crash_smoke.pmc

# optimize-smoke runs the repair-to-optimize pass over the whole corpus
# (buggy targets are repaired first) and re-proves "do no harm"
# externally: workload return values and detector report multisets must
# be unchanged, the crashsim-able targets must carry a verdict-identity
# proof, and the showcase targets (the four overpersist shapes plus
# redis-flushfree) must each lose at least one flush or fence.
optimize-smoke:
	$(GO) test ./internal/optimize/ -run TestOptimizeSmoke -count=1 -v

# server-smoke boots hippocratesd on an ephemeral port, round-trips one
# buggy corpus program (repair + crash validation), schema-validates the
# response, /metrics.json, and the flight recorder against
# internal/server/schema/, lints the Prometheus /metrics exposition,
# checks trace-ID propagation, and proves an identical resubmit is served
# byte-identically from the response cache.
server-smoke:
	$(GO) run ./cmd/hippocratesd -smoke -quiet

# fleet-smoke runs the fault-injection suite against real in-process
# backends behind the hippocratesfleet router — a backend hard-killed
# mid-load, a SIGTERM drain, injected latency with hedging armed, and
# TCP connection resets — and requires every scenario to finish with
# zero harm: all jobs accepted, every accepted response byte-identical
# to a sequential run, every rejection an honest 429/503 + Retry-After.
# It also lints the router's own Prometheus /metrics exposition.
fleet-smoke:
	$(GO) run ./cmd/hippocratesfleet -smoke -quiet

# incremental-smoke proves the summary-cached incremental analysis does
# no harm: warm re-analyses over progen's deterministic edit sequence
# must be byte-identical to cold runs with exact invalidation footprints,
# the whole corpus must analyze identically with and without a shared
# store, and a concurrent daemon sharing one store across jobs must serve
# byte-identical responses (under the race detector).
incremental-smoke:
	$(GO) test -race -count=1 -run 'TestEditSequenceWarmIdentical|TestIncrementalCorpusByteIdentical|TestSoakStaticSummaryReuse' ./internal/progen/ ./internal/static/ ./internal/server/

# mt-smoke proves the interleaving-aware pipeline end to end: the
# concurrent corpus programs must hide their bugs under the default
# round-robin schedule where seeded to, expose them under exploration,
# replay deterministically by schedule id, and come out fixed (detector
# union clean + every explored interleaving crash-validated); the
# schedule package's own suite pins POR/bounded-exhaustive verdict
# equivalence and replay determinism; the threaded agreement sweep pins
# static superset soundness over generated concurrent programs.
mt-smoke:
	$(GO) test ./internal/corpus/ -run TestMTSmoke -count=1 -v
	$(GO) test ./internal/schedule/ -count=1
	$(GO) test ./internal/static/ -run TestProgenThreadedAgreement -count=1

# verify is the tier-1 gate (referenced from ROADMAP.md): vet, build, the
# full suite under the race detector, the agreement harness, and the
# telemetry, crash-validation, interleaving, incremental-analysis, and
# repair-service smoke tests.
verify: vet build
	$(GO) test -race ./...
	$(MAKE) agreement
	$(MAKE) metrics-smoke
	$(MAKE) crash-smoke
	$(MAKE) optimize-smoke
	$(MAKE) incremental-smoke
	$(MAKE) mt-smoke
	$(MAKE) server-smoke
	$(MAKE) fleet-smoke

bench:
	$(GO) test -bench=. -benchmem ./...
	BENCH_CRASHSIM_OUT=$(CURDIR)/BENCH_crashsim.json $(GO) test -run '^TestWriteCrashSweepJSON$$' -count=1 -v ./internal/bench/

# bench-server replays the crashsim-able corpus (cold + warm rounds) against
# an in-process daemon and writes throughput/latency/speedup, per-round
# cache hit ratios, and the per-round time series (throughput + daemon
# queue depth) to BENCH_server.json.
bench-server:
	$(GO) run ./cmd/hippocratesd -selftest -quiet -bench-out $(CURDIR)/BENCH_server.json

# bench-optimize sweeps the optimize pass over the corpus and writes the
# per-target simulated-cost deltas (pmem.CostModel) of the proven edit
# set to BENCH_optimize.json.
bench-optimize:
	BENCH_OPTIMIZE_OUT=$(CURDIR)/BENCH_optimize.json $(GO) test -run '^TestWriteOptSweepJSON$$' -count=1 -v ./internal/bench/

# bench-incremental replays the deterministic layered edit sequence
# (51 functions, 6 edits) comparing a cold whole-module static analysis
# against a warm summary-store-backed one per edit, and writes per-edit
# cold/warm times, speedups, hit counts, and the byte-identity bit to
# BENCH_incremental.json.
bench-incremental:
	BENCH_INCREMENTAL_OUT=$(CURDIR)/BENCH_incremental.json $(GO) test -run '^TestWriteIncrSweepJSON$$' -count=1 -v ./internal/bench/

# bench-mt sweeps the bounded interleaving search over the concurrent
# corpus — POR vs bounded-exhaustive explored counts (the pruning
# factor), schedules/second, and the end-to-end interleaving-aware
# repair time including the per-schedule crash sweep — and writes
# BENCH_mt.json.
bench-mt:
	BENCH_MT_OUT=$(CURDIR)/BENCH_mt.json $(GO) test -run '^TestWriteMTSweepJSON$$' -count=1 -v ./internal/bench/

# bench-fleet measures routed cold/warm corpus throughput at 1, 2, and 3
# backends plus a kill drill (one backend killed mid-load: zero accepted
# jobs lost, zero mismatched bytes, client-observed p99) and writes
# BENCH_fleet.json. Cold throughput scales with spare CPU, not backend
# count — the report records gomaxprocs so the scaling numbers read in
# context.
bench-fleet:
	$(GO) run ./cmd/hippocratesfleet -bench -bench-out $(CURDIR)/BENCH_fleet.json
