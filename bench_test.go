// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure in the paper's evaluation (run them all
// with `go test -bench=. -benchmem`), plus micro-benchmarks for the
// substrate (interpreter, alias analysis, detector, fixer) and ablations
// for the design choices DESIGN.md calls out (hoisting on/off, Full-AA vs
// Trace-AA marks).
package repro_test

import (
	"testing"

	"hippocrates/internal/alias"
	"hippocrates/internal/bench"
	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/study"
	"hippocrates/internal/trace"
	"hippocrates/internal/ycsb"
)

// ---- one benchmark per table/figure ----

// BenchmarkFig1BugStudy regenerates the §3 bug-study table.
func BenchmarkFig1BugStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := study.Aggregate()
		if st.AvgCommits != 13 || st.AvgDays != 28 || st.MaxDays != 66 {
			b.Fatalf("Fig. 1 aggregates drifted: %d/%d/%d", st.AvgCommits, st.AvgDays, st.MaxDays)
		}
	}
}

// BenchmarkFig3Accuracy regenerates the Fig. 3 fix-accuracy comparison.
func BenchmarkFig3Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		if res.Identical != 8 || res.Equivalent != 3 {
			b.Fatalf("verdicts = %d/%d, want 8/3", res.Identical, res.Equivalent)
		}
	}
}

// BenchmarkEffectiveness regenerates the §6.1 result (23/23 bugs fixed).
func BenchmarkEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunEffectiveness()
		if err != nil {
			b.Fatal(err)
		}
		if res.Total != 23 {
			b.Fatalf("fixed %d bugs, want 23", res.Total)
		}
	}
}

// BenchmarkFig4RedisYCSB runs the §6.3 case study on a reduced
// configuration and reports the headline series as metrics.
func BenchmarkFig4RedisYCSB(b *testing.B) {
	cfg := bench.Fig4Config{Records: 300, Ops: 300, Trials: 2, Seed: 1}
	var last *bench.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		lo, hi := last.SpeedupRange()
		b.ReportMetric(lo, "speedup-min")
		b.ReportMetric(hi, "speedup-max")
		for _, row := range last.Rows {
			if row.Workload == "Load" {
				b.ReportMetric(row.Get("RedisH-full").Mean, "load-full-ops/s")
				b.ReportMetric(row.Get("Redis-pm").Mean, "load-pm-ops/s")
				b.ReportMetric(row.Get("RedisH-intra").Mean, "load-intra-ops/s")
			}
		}
	}
}

// BenchmarkFig5Overhead measures Hippocrates's offline overhead per target.
func BenchmarkFig5Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig5()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatal("missing targets")
		}
	}
}

// BenchmarkSizeImpact measures the §6.4 code-size impact.
func BenchmarkSizeImpact(b *testing.B) {
	var added int
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSizeImpact()
		if err != nil {
			b.Fatal(err)
		}
		added = res.IRLinesAdded
	}
	b.ReportMetric(float64(added), "IR-lines-added")
}

// BenchmarkCrashSweep measures crash-schedule validation over the whole
// crashsim-able corpus (buggy and repaired build of every target), the
// quantity the COW/dedup fast path optimizes. The dedup sub-benchmark is
// the shipped configuration; no-dedup is the ablation arm that boots
// every image from scratch. Repair happens once, outside the timed loop.
func BenchmarkCrashSweep(b *testing.B) {
	targets, err := bench.PrepareCrashSweep()
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name    string
		noDedup bool
	}{{"dedup", false}, {"no-dedup", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var last *bench.CrashSweepOutcome
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := bench.RunCrashSweep(targets, cfg.noDedup)
				if err != nil {
					b.Fatal(err)
				}
				last = out
			}
			if last != nil {
				b.ReportMetric(float64(last.Schedules), "schedules")
				b.ReportMetric(float64(last.Failures), "failures")
				b.ReportMetric(float64(last.DedupedSchedules), "deduped")
				b.ReportMetric(float64(last.ImagesBuilt), "images")
			}
		})
	}
}

// ---- ablations ----

// BenchmarkAblationHoisting compares the full fixer against the
// intraprocedural-only configuration on flush-free Redis: the heuristic's
// value shows up as end-program throughput, its cost as fixer runtime.
func BenchmarkAblationHoisting(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"heuristic", false}, {"intra-only", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			p := corpus.ByName("redis-flushfree")
			for i := 0; i < b.N; i++ {
				m := p.MustCompile()
				res, err := core.RunAndRepair(m, p.Entry, core.Options{DisableHoisting: cfg.disable})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Fixed() {
					b.Fatal("repair incomplete")
				}
			}
		})
	}
}

// BenchmarkAblationMarks compares Full-AA and Trace-AA mark derivation.
func BenchmarkAblationMarks(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mode core.MarksMode
	}{{"full-aa", core.FullAA}, {"trace-aa", core.TraceAA}} {
		b.Run(cfg.name, func(b *testing.B) {
			p := corpus.ByName("redis-flushfree")
			for i := 0; i < b.N; i++ {
				m := p.MustCompile()
				if _, err := core.RunAndRepair(m, p.Entry, core.Options{Marks: cfg.mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- substrate micro-benchmarks ----

const fibSrc = `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(18); }
`

// BenchmarkInterpreter measures raw simulated execution speed.
func BenchmarkInterpreter(b *testing.B) {
	m, err := lang.Compile("fib.pmc", fibSrc)
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mach, err := interp.New(m, interp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mach.Run("main"); err != nil {
			b.Fatal(err)
		}
		steps = mach.Steps()
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkCompiler measures the pmc front end on the Redis source.
func BenchmarkCompiler(b *testing.B) {
	p := corpus.ByName("redis-pmem")
	src := p.Source()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lang.Compile("redis.pmc", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAndersen measures the whole-program points-to analysis.
func BenchmarkAndersen(b *testing.B) {
	m := corpus.ByName("redis-pmem").MustCompile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alias.Analyze(m)
	}
}

// BenchmarkDetector measures pmcheck's trace replay.
func BenchmarkDetector(b *testing.B) {
	p := corpus.ByName("redis-flushfree")
	m := p.MustCompile()
	tr, err := core.TraceModule(m, p.Entry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pmcheck.Check(tr)
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
}

// BenchmarkFixPass measures Hippocrates's repair pass alone (analysis,
// planning, transformation — the Fig. 5 quantity).
func BenchmarkFixPass(b *testing.B) {
	p := corpus.ByName("redis-flushfree")
	proto := p.MustCompile()
	tr, err := core.TraceModule(proto, p.Entry)
	if err != nil {
		b.Fatal(err)
	}
	res := pmcheck.Check(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := ir.CloneModule(proto)
		b.StartTimer()
		if _, err := core.Repair(m, tr, res, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceRoundTrip measures trace serialization.
func BenchmarkTraceRoundTrip(b *testing.B) {
	p := corpus.ByName("redis-flushfree")
	m := p.MustCompile()
	tr, err := core.TraceModule(m, p.Entry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text := tr.String()
		if _, err := trace.ParseString(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYCSBGenerator measures operation-stream generation.
func BenchmarkYCSBGenerator(b *testing.B) {
	g := ycsb.NewGenerator(ycsb.WorkloadA, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkAblationReduction measures the phase-2 fix-reduction ablation
// on flush-free Redis: the repair pass with and without reduction, with
// the resulting flush-instruction counts reported as metrics.
func BenchmarkAblationReduction(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"reduce", false}, {"no-reduce", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			p := corpus.ByName("redis-flushfree")
			var flushes int
			for i := 0; i < b.N; i++ {
				m := p.MustCompile()
				res, err := core.RunAndRepair(m, p.Entry, core.Options{DisableReduction: cfg.disable})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Fixed() {
					b.Fatal("repair incomplete")
				}
				flushes = 0
				for _, f := range m.Funcs {
					for _, blk := range f.Blocks {
						for _, in := range blk.Instrs {
							if in.Op == ir.OpFlush {
								flushes++
							}
						}
					}
				}
			}
			b.ReportMetric(float64(flushes), "flush-instrs")
		})
	}
}
