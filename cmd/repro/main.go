// Command repro regenerates every table and figure from the paper's
// evaluation (§6) on the simulated substrate.
//
// Usage:
//
//	repro -all            everything below
//	repro -fig1           the 26-bug study table
//	repro -fig3           fix-accuracy comparison (11 PMDK issues)
//	repro -effectiveness  §6.1: all 23 bugs found and repaired
//	repro -fig4           Redis YCSB case study (§6.3)
//	repro -fig5           Hippocrates offline overhead
//	repro -size           §6.4 code-size impact
//
// Fig. 4 options:
//
//	-records N -ops N -trials N    workload size (defaults follow the
//	                               paper: 10000/10000/20)
//	-quick                         reduced configuration (600/600/5)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hippocrates/internal/bench"
	"hippocrates/internal/cli"
	"hippocrates/internal/obs"
	"hippocrates/internal/study"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	fig1 := flag.Bool("fig1", false, "Fig. 1: bug study table")
	fig3 := flag.Bool("fig3", false, "Fig. 3: fix accuracy")
	eff := flag.Bool("effectiveness", false, "§6.1 effectiveness")
	fig4 := flag.Bool("fig4", false, "Fig. 4: Redis YCSB")
	fig5 := flag.Bool("fig5", false, "Fig. 5: offline overhead")
	size := flag.Bool("size", false, "§6.4 code-size impact")
	quick := flag.Bool("quick", false, "reduced Fig. 4 configuration")
	records := flag.Int64("records", 10000, "Fig. 4 record count")
	ops := flag.Int("ops", 10000, "Fig. 4 operations per workload")
	trials := flag.Int("trials", 20, "Fig. 4 trials per workload")
	var obsFlags cli.ObsFlags
	obsFlags.Register()
	flag.Parse()

	if !(*all || *fig1 || *fig3 || *eff || *fig4 || *fig5 || *size) {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	rec := obsFlags.NewRecorder()
	root := rec.StartSpan("repro")
	var cur *obs.Span
	section := func(name string) {
		cur.End()
		cur = root.Start(name)
		fmt.Printf("\n==== %s ====\n\n", name)
	}

	if *all || *fig1 {
		section("Fig. 1 — study of PMDK durability bugs (§3)")
		fmt.Print(study.Aggregate().Render())
		fmt.Println()
		fmt.Print(study.RenderIssues())
	}
	if *all || *eff {
		section("§6.1 — effectiveness")
		res, err := bench.RunEffectiveness()
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Render())
	}
	if *all || *fig3 {
		section("Fig. 3 — accuracy of fixes vs developer fixes (§6.2)")
		res, err := bench.RunFig3()
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Render())
	}
	if *all || *fig4 {
		section("Fig. 4 — Redis-pmem YCSB case study (§6.3)")
		cfg := bench.Fig4Config{Records: *records, Ops: *ops, Trials: *trials, Seed: 1}
		if *quick {
			cfg = bench.QuickFig4Config()
		}
		start := time.Now()
		res, err := bench.RunFig4(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Render())
		fmt.Println()
		fmt.Print(res.Chart())
		fmt.Printf("(simulated in %v wall clock)\n", time.Since(start).Round(time.Millisecond))
	}
	if *all || *fig5 {
		section("Fig. 5 — Hippocrates offline overhead (§6.4)")
		res, err := bench.RunFig5()
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Render())
	}
	if *all || *size {
		section("§6.4 — code-size impact")
		res, err := bench.RunSizeImpact()
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Render())
	}
	cur.End()
	root.End()
	if err := obsFlags.Finish(rec, os.Stdout); err != nil {
		fail(err)
	}
}
