// Command hippocrates is the automated PM durability-bug fixer (the
// paper's tool, Fig. 2): it traces a program through the bug finder,
// computes safe fixes — intraprocedural flush/fence insertion and
// persistent subprogram transformations placed by the hoisting heuristic —
// applies them, and re-validates the repaired program.
//
// Usage:
//
//	hippocrates [flags] program.pmc
//
// Flags:
//
//	-entry NAME       entry function (default "main")
//	-o FILE           write the repaired module (textual IR) to FILE
//	-trace FILE       use an existing trace instead of running the program
//	-marks MODE       heuristic pointer marks: full-aa | trace-aa
//	-intra-only       disable hoisting (intraprocedural fixes only)
//	-show-fixes       print each applied fix
//	-show-scores      print the heuristic's candidate scores
//	-diff             print a line diff of the repaired IR
//	-flush KIND       inserted flush flavour: clwb (default) | clflushopt | clflush
//
// Exit status is 1 on failure to repair.
package main

import (
	"flag"
	"fmt"
	"os"

	"hippocrates/internal/cli"
	"hippocrates/internal/core"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	out := flag.String("o", "", "write the repaired module to this file")
	tracePath := flag.String("trace", "", "use an existing trace instead of running")
	marks := flag.String("marks", "full-aa", "pointer marks: full-aa | trace-aa")
	intraOnly := flag.Bool("intra-only", false, "disable hoisting (intraprocedural fixes only)")
	showFixes := flag.Bool("show-fixes", false, "print each applied fix")
	showScores := flag.Bool("show-scores", false, "print heuristic candidate scores")
	showDiff := flag.Bool("diff", false, "print a line diff of the repaired IR")
	flushKind := flag.String("flush", "clwb", "inserted flush flavour: clwb | clflushopt | clflush")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hippocrates [flags] program.pmc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *entry, *out, *tracePath, *marks, *flushKind, *intraOnly, *showFixes, *showScores, *showDiff); err != nil {
		fmt.Fprintln(os.Stderr, "hippocrates:", err)
		os.Exit(1)
	}
}

func run(path, entry, out, tracePath, marks, flushKind string, intraOnly, showFixes, showScores, showDiff bool) error {
	mod, err := cli.LoadModule(path)
	if err != nil {
		return err
	}
	var before string
	if showDiff {
		before = ir.Print(mod)
	}
	opts := core.Options{DisableHoisting: intraOnly}
	switch flushKind {
	case "clwb":
		opts.FlushKind = ir.CLWB
	case "clflushopt":
		opts.FlushKind = ir.CLFLUSHOPT
	case "clflush":
		opts.FlushKind = ir.CLFLUSH
	default:
		return fmt.Errorf("unknown -flush %q", flushKind)
	}
	switch marks {
	case "full-aa":
		opts.Marks = core.FullAA
	case "trace-aa":
		opts.Marks = core.TraceAA
	default:
		return fmt.Errorf("unknown -marks %q", marks)
	}
	if showScores {
		opts.DebugScores = os.Stderr
	}

	var res *core.PipelineResult
	if tracePath != "" {
		tr, err := cli.LoadTrace(tracePath)
		if err != nil {
			return err
		}
		check := pmcheck.Check(tr)
		res = &core.PipelineResult{Trace: tr, Before: check}
		if check.Clean() {
			res.After = check
		} else {
			fixRes, err := core.Repair(mod, tr, check, opts)
			if err != nil {
				return err
			}
			res.Fix = fixRes
			tr2, err := core.TraceModule(mod, entry)
			if err != nil {
				return err
			}
			res.After = pmcheck.Check(tr2)
		}
	} else {
		res, err = core.RunAndRepair(mod, entry, opts)
		if err != nil {
			return err
		}
	}

	fmt.Printf("hippocrates: %d bug(s) before repair (%d unique store sites)\n",
		len(res.Before.Reports), res.Before.UniqueSites())
	if res.Fix != nil {
		fmt.Printf("hippocrates: applied %d fix(es): %d interprocedural, %d reduced away, %d persistent subprogram(s)\n",
			len(res.Fix.Fixes), res.Fix.InterprocFixes(), res.Fix.ReducedFixes, res.Fix.ClonesCreated)
		fmt.Printf("hippocrates: module grew %d -> %d instructions (+%.3f%%) using %s marks\n",
			res.Fix.InstrsBefore, res.Fix.InstrsAfter,
			100*float64(res.Fix.InstrsAfter-res.Fix.InstrsBefore)/float64(res.Fix.InstrsBefore),
			res.Fix.MarksName)
		if showFixes {
			for i, fx := range res.Fix.Fixes {
				fmt.Printf("  [%d] %s\n", i+1, fx)
			}
		}
	}
	if showDiff && res.Fix != nil {
		fmt.Println("hippocrates: repair diff:")
		fmt.Print(cli.DiffLines(before, ir.Print(mod)))
	}
	if res.Fixed() {
		fmt.Println("hippocrates: repaired module is clean under the bug finder")
	} else {
		fmt.Print(res.After.Summary())
		return fmt.Errorf("repair incomplete")
	}
	if out != "" {
		if err := cli.WriteModule(mod, out); err != nil {
			return err
		}
		fmt.Printf("hippocrates: wrote repaired module to %s\n", out)
	}
	return nil
}
