// Command hippocrates is the automated PM durability-bug fixer (the
// paper's tool, Fig. 2): it traces a program through the bug finder,
// computes safe fixes — intraprocedural flush/fence insertion and
// persistent subprogram transformations placed by the hoisting heuristic —
// applies them, and re-validates the repaired program.
//
// Usage:
//
//	hippocrates [flags] program.pmc
//
// Flags:
//
//	-entry NAME       entry function (default "main")
//	-o FILE           write the repaired module (textual IR) to FILE
//	-trace FILE       use an existing trace instead of running the program
//	-marks MODE       heuristic pointer marks: full-aa | trace-aa
//	-intra-only       disable hoisting (intraprocedural fixes only)
//	-show-fixes       print each applied fix
//	-show-scores      print the heuristic's candidate scores
//	-diff             print a line diff of the repaired IR
//	-flush KIND       inserted flush flavour: clwb (default) | clflushopt | clflush
//	-crashcheck       after repair, crash-inject the repaired module at PM
//	                  event boundaries and require its recovery entries to
//	                  accept every feasible post-crash image
//	-invariant NAME   structural recovery entry for -crashcheck
//	                  (default invariant_check; "-" disables)
//	-recovery NAME    durability-promise recovery entry for -crashcheck
//	                  (default crash_check; "-" disables)
//	-no-dedup         disable content-addressed verdict dedup for
//	                  -crashcheck: boot recovery on every schedule even
//	                  when its image is byte-identical to one already judged
//	-steplimit N      instruction budget per interpreter run (default 100M)
//	-metrics FILE     write counters/histograms/phase timings as JSON
//	-spans FILE       write the span tree as Chrome trace_event JSON
//	-audit            print the repair audit trail
//
// Every run ends with a one-line phase-timing summary; telemetry is
// always recorded here (the cost is a handful of phase-level spans) and
// the flags only select what gets exported.
//
// Exit status is 1 on failure to repair.
package main

import (
	"flag"
	"fmt"
	"os"

	"hippocrates/internal/cli"
	"hippocrates/internal/core"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	out := flag.String("o", "", "write the repaired module to this file")
	tracePath := flag.String("trace", "", "use an existing trace instead of running")
	marks := flag.String("marks", "full-aa", "pointer marks: full-aa | trace-aa")
	intraOnly := flag.Bool("intra-only", false, "disable hoisting (intraprocedural fixes only)")
	showFixes := flag.Bool("show-fixes", false, "print each applied fix")
	showScores := flag.Bool("show-scores", false, "print heuristic candidate scores")
	showDiff := flag.Bool("diff", false, "print a line diff of the repaired IR")
	flushKind := flag.String("flush", "clwb", "inserted flush flavour: clwb | clflushopt | clflush")
	crashCheck := flag.Bool("crashcheck", false, "crash-schedule validation of the repaired module")
	invariant := flag.String("invariant", "", "structural recovery entry for -crashcheck (default invariant_check)")
	recovery := flag.String("recovery", "", "durability-promise recovery entry for -crashcheck (default crash_check)")
	noDedup := flag.Bool("no-dedup", false, "disable verdict dedup for -crashcheck (debug escape hatch)")
	var limits cli.LimitFlags
	limits.Register()
	var obsFlags cli.ObsFlags
	obsFlags.Register()
	flag.Parse()
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "hippocrates:", msg)
		os.Exit(2)
	}
	if err := limits.Validate(); err != nil {
		usage(err.Error())
	}
	if !*crashCheck {
		if *invariant != "" {
			usage("-invariant only applies with -crashcheck")
		}
		if *recovery != "" {
			usage("-recovery only applies with -crashcheck")
		}
		if *noDedup {
			usage("-no-dedup only applies with -crashcheck")
		}
	} else if *tracePath != "" {
		usage("-crashcheck re-executes the program; it cannot be combined with -trace")
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hippocrates [flags] program.pmc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *entry, *out, *tracePath, *marks, *flushKind, *invariant, *recovery,
		*intraOnly, *showFixes, *showScores, *showDiff, *crashCheck, *noDedup, limits, obsFlags); err != nil {
		fmt.Fprintln(os.Stderr, "hippocrates:", err)
		os.Exit(1)
	}
}

func run(path, entry, out, tracePath, marks, flushKind, invariant, recovery string,
	intraOnly, showFixes, showScores, showDiff, crashCheck, noDedup bool,
	limits cli.LimitFlags, obsFlags cli.ObsFlags) error {
	// The recorder is always on: the default end-of-run summary needs the
	// phase timings, and a CLI run only creates phase-level spans.
	rec := obs.New()
	if obsFlags.MetricsPath != "" {
		rec.SetTrackAllocs(true)
	}
	root := rec.StartSpan("pipeline")
	root.SetAttr("program", path)
	root.SetAttr("entry", entry)

	mod, err := cli.LoadModuleObs(path, root)
	if err != nil {
		return err
	}
	var before string
	if showDiff {
		before = ir.Print(mod)
	}
	opts := core.Options{DisableHoisting: intraOnly, Obs: root, StepLimit: limits.StepLimit}
	if crashCheck {
		opts.CrashCheck = &crashsim.Options{
			Invariant: invariant, Recovery: recovery, NoDedup: noDedup, Log: os.Stdout,
		}
	}
	switch flushKind {
	case "clwb":
		opts.FlushKind = ir.CLWB
	case "clflushopt":
		opts.FlushKind = ir.CLFLUSHOPT
	case "clflush":
		opts.FlushKind = ir.CLFLUSH
	default:
		return fmt.Errorf("unknown -flush %q", flushKind)
	}
	switch marks {
	case "full-aa":
		opts.Marks = core.FullAA
	case "trace-aa":
		opts.Marks = core.TraceAA
	default:
		return fmt.Errorf("unknown -marks %q", marks)
	}
	if showScores {
		opts.DebugScores = os.Stderr
	}

	var res *core.PipelineResult
	if tracePath != "" {
		tr, err := cli.LoadTrace(tracePath)
		if err != nil {
			return err
		}
		check := pmcheck.CheckObs(root, tr)
		res = &core.PipelineResult{Trace: tr, Before: check}
		if check.Clean() {
			res.After = check
		} else {
			fixRes, err := core.Repair(mod, tr, check, opts)
			if err != nil {
				return err
			}
			res.Fix = fixRes
			rsp := root.Start("revalidate")
			tr2, err := core.TraceModuleObs(rsp, mod, entry)
			if err != nil {
				rsp.End()
				return err
			}
			res.After = pmcheck.CheckObs(rsp, tr2)
			rsp.End()
		}
	} else {
		res, err = core.RunAndRepair(mod, entry, opts)
		if err != nil {
			return err
		}
	}

	fmt.Printf("hippocrates: %d bug(s) before repair (%d unique store sites)\n",
		len(res.Before.Reports), res.Before.UniqueSites())
	if res.Fix != nil {
		fmt.Printf("hippocrates: applied %d fix(es): %d interprocedural, %d reduced away, %d persistent subprogram(s)\n",
			len(res.Fix.Fixes), res.Fix.InterprocFixes(), res.Fix.ReducedFixes, res.Fix.ClonesCreated)
		fmt.Printf("hippocrates: module grew %d -> %d instructions (+%.3f%%) using %s marks\n",
			res.Fix.InstrsBefore, res.Fix.InstrsAfter,
			100*float64(res.Fix.InstrsAfter-res.Fix.InstrsBefore)/float64(res.Fix.InstrsBefore),
			res.Fix.MarksName)
		if showFixes {
			for i, fx := range res.Fix.Fixes {
				fmt.Printf("  [%d] %s\n", i+1, fx)
			}
		}
	}
	if showDiff && res.Fix != nil {
		fmt.Println("hippocrates: repair diff:")
		fmt.Print(cli.DiffLines(before, ir.Print(mod)))
	}
	for i, round := range res.CrashRounds {
		status := "PASS"
		if !round.Passed() {
			status = fmt.Sprintf("%d point(s) still failing", len(round.Failures))
		}
		fmt.Printf("hippocrates: crashcheck after fix %d/%d: %s (%d schedule(s), %d deduped)\n",
			i+1, len(res.CrashRounds)+1, status, round.Schedules, round.DedupedSchedules)
	}
	if res.Crash != nil {
		fmt.Print(res.Crash.Summary())
	}
	repairErr := error(nil)
	if res.Fixed() {
		fmt.Println("hippocrates: repaired module is clean under the bug finder")
	} else {
		if !res.After.Clean() {
			fmt.Print(res.After.Summary())
		}
		repairErr = fmt.Errorf("repair incomplete")
	}
	if out != "" && repairErr == nil {
		if err := cli.WriteModule(mod, out); err != nil {
			return err
		}
		fmt.Printf("hippocrates: wrote repaired module to %s\n", out)
	}

	root.End()
	fixes := 0
	if res.Fix != nil {
		fixes = len(res.Fix.Fixes)
	}
	fmt.Printf("hippocrates: summary: %s | %d fix(es)\n", cli.PhaseSummary(rec), fixes)
	if err := obsFlags.Finish(rec, os.Stdout); err != nil {
		return err
	}
	return repairErr
}
