// Command hippocrates is the automated PM durability-bug fixer (the
// paper's tool, Fig. 2): it traces a program through the bug finder,
// computes safe fixes — intraprocedural flush/fence insertion and
// persistent subprogram transformations placed by the hoisting heuristic —
// applies them, and re-validates the repaired program.
//
// Usage:
//
//	hippocrates [flags] program.pmc
//
// Flags:
//
//	-entry NAME       entry function (default "main")
//	-o FILE           write the repaired module (textual IR) to FILE
//	-trace FILE       use an existing trace instead of running the program
//	-static           static persistency analysis as the bug source: the
//	                  program is never executed (repairs are planned on
//	                  whole-program alias facts and revalidated statically)
//	-marks MODE       heuristic pointer marks: full-aa | trace-aa
//	-intra-only       disable hoisting (intraprocedural fixes only)
//	-show-fixes       print each applied fix
//	-show-scores      print the heuristic's candidate scores
//	-diff             print a line diff of the repaired IR
//	-flush KIND       inserted flush flavour: clwb (default) | clflushopt | clflush
//	-crashcheck       after repair, crash-inject the repaired module at PM
//	                  event boundaries and require its recovery entries to
//	                  accept every feasible post-crash image
//	-optimize         after a successful repair, delete/coalesce/sink
//	                  provably-redundant flushes and fences; every edit is
//	                  proven harmless by run/report identity and (with
//	                  recovery entries) crashsim verdict identity
//	-invariant NAME   structural recovery entry for -crashcheck
//	                  (default invariant_check; "-" disables)
//	-recovery NAME    durability-promise recovery entry for -crashcheck
//	                  (default crash_check; "-" disables)
//	-no-dedup         disable content-addressed verdict dedup for
//	                  -crashcheck: boot recovery on every schedule even
//	                  when its image is byte-identical to one already judged
//	-threads          interleaving-aware repair: explore the workload's
//	                  thread schedules (bounded, with persistence-aware
//	                  partial-order reduction), repair the union of every
//	                  schedule's reports, and require the repaired module
//	                  to be clean under re-exploration; with -crashcheck
//	                  every explored interleaving is crash-swept
//	-max-schedules N  schedule budget for -threads (0 = default)
//	-steplimit N      instruction budget per interpreter run (default 100M)
//	-metrics FILE     write counters/histograms/phase timings as JSON
//	-spans FILE       write the span tree as Chrome trace_event JSON
//	-audit            print the repair audit trail
//
// Every run ends with a one-line phase-timing summary; telemetry is
// always recorded here (the cost is a handful of phase-level spans) and
// the flags only select what gets exported.
//
// The pipeline itself lives behind cli.Run — the same entrypoint
// hippocratesd serves over HTTP, so the command and the daemon cannot
// drift.
//
// Exit status is 1 on failure to repair.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hippocrates/internal/cli"
	"hippocrates/internal/core"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	out := flag.String("o", "", "write the repaired module to this file")
	tracePath := flag.String("trace", "", "use an existing trace instead of running")
	staticMode := flag.Bool("static", false, "static persistency analysis as the bug source (no execution)")
	marks := flag.String("marks", "full-aa", "pointer marks: full-aa | trace-aa")
	intraOnly := flag.Bool("intra-only", false, "disable hoisting (intraprocedural fixes only)")
	showFixes := flag.Bool("show-fixes", false, "print each applied fix")
	showScores := flag.Bool("show-scores", false, "print heuristic candidate scores")
	showDiff := flag.Bool("diff", false, "print a line diff of the repaired IR")
	flushKind := flag.String("flush", "clwb", "inserted flush flavour: clwb | clflushopt | clflush")
	crashCheck := flag.Bool("crashcheck", false, "crash-schedule validation of the repaired module")
	invariant := flag.String("invariant", "", "structural recovery entry for -crashcheck (default invariant_check)")
	recovery := flag.String("recovery", "", "durability-promise recovery entry for -crashcheck (default crash_check)")
	noDedup := flag.Bool("no-dedup", false, "disable verdict dedup for -crashcheck (debug escape hatch)")
	optimizeFlag := flag.Bool("optimize", false, "prove-and-apply redundant flush/fence elimination after repair")
	threads := flag.Bool("threads", false, "interleaving-aware repair across explored thread schedules")
	maxSchedules := flag.Int("max-schedules", 0, "schedule budget for -threads (0 = default)")
	var limits cli.LimitFlags
	limits.Register()
	var obsFlags cli.ObsFlags
	obsFlags.Register()
	flag.Parse()
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "hippocrates:", msg)
		os.Exit(2)
	}
	if err := limits.Validate(); err != nil {
		usage(err.Error())
	}
	if !*crashCheck {
		if *invariant != "" {
			usage("-invariant only applies with -crashcheck")
		}
		if *recovery != "" {
			usage("-recovery only applies with -crashcheck")
		}
		if *noDedup {
			usage("-no-dedup only applies with -crashcheck")
		}
	} else if *tracePath != "" {
		usage("-crashcheck re-executes the program; it cannot be combined with -trace")
	}
	if *staticMode {
		if *tracePath != "" {
			usage("-static analyzes without a trace; it cannot be combined with -trace")
		}
		if *crashCheck {
			usage("-crashcheck executes the program; it cannot be combined with -static")
		}
		if *optimizeFlag {
			usage("-optimize measures executions; it cannot be combined with -static")
		}
	}
	if *optimizeFlag && *tracePath != "" {
		usage("-optimize re-executes the program; it cannot be combined with -trace")
	}
	if *threads {
		switch {
		case *staticMode:
			usage("-threads needs dynamic execution; it cannot be combined with -static")
		case *tracePath != "":
			usage("-threads explores interleavings; it cannot be combined with -trace")
		case *optimizeFlag:
			usage("-optimize measures single-schedule executions; it cannot be combined with -threads")
		}
	} else if *maxSchedules != 0 {
		usage("-max-schedules only applies with -threads")
	}
	if *maxSchedules < 0 {
		usage("-max-schedules must be >= 0")
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hippocrates [flags] program.pmc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	req := &cli.Request{
		Mode:       cli.ModeRepair,
		Entry:      *entry,
		Static:     *staticMode,
		Marks:      *marks,
		IntraOnly:  *intraOnly,
		Flush:      *flushKind,
		CrashCheck: *crashCheck,
		Invariant:  *invariant,
		Recovery:   *recovery,
		NoDedup:    *noDedup,
		Optimize:   *optimizeFlag,
		StepLimit:  limits.StepLimit,
	}
	req.Threads = *threads
	req.MaxSchedules = *maxSchedules
	if *showScores {
		req.DebugScores = os.Stderr
	}
	if *crashCheck {
		req.CrashLog = os.Stdout
	}
	if err := run(flag.Arg(0), *out, *tracePath, *showFixes, *showDiff, req, obsFlags); err != nil {
		fmt.Fprintln(os.Stderr, "hippocrates:", err)
		os.Exit(1)
	}
}

func run(path, out, tracePath string, showFixes, showDiff bool,
	req *cli.Request, obsFlags cli.ObsFlags) error {
	// The recorder is always on: the default end-of-run summary needs the
	// phase timings, and a CLI run only creates phase-level spans.
	rec := obs.New()
	if obsFlags.MetricsPath != "" {
		rec.SetTrackAllocs(true)
	}
	root := rec.StartSpan("pipeline")

	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	req.Program = filepath.Base(path)
	req.Source = string(src)
	if tracePath != "" {
		req.ReplayTrace, err = cli.LoadTrace(tracePath)
		if err != nil {
			return err
		}
	}
	mod, err := cli.CompileRequest(req, root)
	if err != nil {
		return err
	}
	var before string
	if showDiff {
		before = ir.Print(mod)
	}

	resp, err := cli.RunModule(req, mod, root)
	if err != nil {
		return err
	}

	fmt.Printf("hippocrates: %d bug(s) before repair (%d unique store sites)\n",
		resp.BugsBefore, resp.SitesBefore)
	if s := resp.Schedules; s != nil {
		fmt.Printf("hippocrates: explored %d interleaving(s) (%d pruned by POR, %d thread(s))\n",
			s.Stats.SchedulesExplored, s.Stats.SchedulesPruned, s.Threads)
		if s.BuggySchedule != "" {
			fmt.Printf("hippocrates: first buggy schedule %s (replay with pmvm -sched)\n", s.BuggySchedule)
		}
	}
	var fix *core.Result
	switch {
	case resp.Pipeline != nil:
		fix = resp.Pipeline.Fix
	case resp.MT != nil:
		fix = resp.MT.Fix
	case resp.StaticResult != nil:
		fix = resp.StaticResult.Fix
	}
	if fix != nil {
		fmt.Printf("hippocrates: applied %d fix(es): %d interprocedural, %d reduced away, %d persistent subprogram(s)\n",
			len(fix.Fixes), fix.InterprocFixes(), fix.ReducedFixes, fix.ClonesCreated)
		fmt.Printf("hippocrates: module grew %d -> %d instructions (+%.3f%%) using %s marks\n",
			fix.InstrsBefore, fix.InstrsAfter,
			100*float64(fix.InstrsAfter-fix.InstrsBefore)/float64(fix.InstrsBefore),
			fix.MarksName)
		if showFixes {
			for _, line := range resp.FixSummaryLines() {
				fmt.Println(line)
			}
		}
	}
	if showDiff && fix != nil {
		fmt.Println("hippocrates: repair diff:")
		fmt.Print(cli.DiffLines(before, ir.Print(mod)))
	}
	for _, sc := range resp.CrashBySchedule {
		status := "PASS"
		if !sc.Report.Passed {
			status = fmt.Sprintf("%d point(s) failing", len(sc.Report.Failures))
		}
		fmt.Printf("hippocrates: crashcheck under schedule %s: %s (%d crash point(s), %d image(s))\n",
			sc.Schedule, status, sc.Report.Points, sc.Report.Schedules)
	}
	if resp.Pipeline != nil {
		for i, round := range resp.Pipeline.CrashRounds {
			status := "PASS"
			if !round.Passed() {
				status = fmt.Sprintf("%d point(s) still failing", len(round.Failures))
			}
			fmt.Printf("hippocrates: crashcheck after fix %d/%d: %s (%d schedule(s), %d deduped)\n",
				i+1, len(resp.Pipeline.CrashRounds)+1, status, round.Schedules, round.DedupedSchedules)
		}
		if resp.Pipeline.Crash != nil {
			fmt.Print(resp.Pipeline.Crash.Summary())
		}
	}
	repairErr := error(nil)
	if resp.Fixed {
		fmt.Println("hippocrates: repaired module is clean under the bug finder")
		if resp.Optimize != nil {
			fmt.Print(resp.Optimize.Summary())
			if showFixes {
				for _, e := range resp.Optimize.Edits {
					fmt.Printf("  %s\n", e)
				}
			}
		}
	} else {
		switch {
		case resp.Pipeline != nil && !resp.Pipeline.After.Clean():
			fmt.Print(resp.Pipeline.After.Summary())
		case resp.MT != nil && !resp.MT.After.Clean():
			fmt.Print(resp.MT.After.Summary())
		case resp.StaticResult != nil && !resp.StaticResult.After.Clean():
			fmt.Print(resp.StaticResult.After.Summary())
		}
		repairErr = fmt.Errorf("repair incomplete")
	}
	if out != "" && repairErr == nil {
		if err := cli.WriteModule(mod, out); err != nil {
			return err
		}
		fmt.Printf("hippocrates: wrote repaired module to %s\n", out)
	}

	root.End()
	fmt.Printf("hippocrates: summary: %s | %d fix(es)\n", cli.PhaseSummary(rec), len(resp.Fixes))
	if err := obsFlags.Finish(rec, os.Stdout); err != nil {
		return err
	}
	return repairErr
}
