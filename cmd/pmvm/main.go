// Command pmvm runs a pmc program (or textual IR module) on the simulated
// persistent-memory machine and reports its result, simulated time, and
// any durability violations observed at the run's durability points.
//
// Usage:
//
//	pmvm [flags] program.pmc [intarg ...]
//
// Flags:
//
//	-entry NAME    entry function (default "main")
//	-trace FILE    write the PM-operation trace to FILE
//	-print-ir      print the lowered IR instead of running
//	-max-steps N   instruction budget (default 100M)
//	-metrics FILE  write counters/histograms/phase timings as JSON
//	-spans FILE    write the span tree as Chrome trace_event JSON
//	-audit         print the repair audit trail (always empty here: pmvm
//	               executes, it never repairs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"hippocrates/internal/cli"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/trace"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	traceOut := flag.String("trace", "", "write the PM trace to this file")
	printIR := flag.Bool("print-ir", false, "print the lowered IR and exit")
	maxSteps := flag.Int64("max-steps", 0, "instruction budget (0 = default)")
	var obsFlags cli.ObsFlags
	obsFlags.Register()
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pmvm [flags] program.pmc [intarg ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Args()[1:], *entry, *traceOut, *printIR, *maxSteps, obsFlags); err != nil {
		fmt.Fprintln(os.Stderr, "pmvm:", err)
		os.Exit(1)
	}
}

func run(path string, argStrs []string, entry, traceOut string, printIR bool, maxSteps int64, obsFlags cli.ObsFlags) error {
	rec := obsFlags.NewRecorder()
	root := rec.StartSpan("pmvm")
	root.SetAttr("program", path)

	mod, err := cli.LoadModuleObs(path, root)
	if err != nil {
		return err
	}
	if printIR {
		fmt.Print(ir.Print(mod))
		return nil
	}
	args := make([]uint64, len(argStrs))
	for i, s := range argStrs {
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return fmt.Errorf("argument %q is not an integer", s)
		}
		args[i] = uint64(v)
	}
	var tr *trace.Trace
	if traceOut != "" || obsFlags.Enabled() {
		tr = &trace.Trace{Program: mod.Name}
	}
	mach, err := interp.New(mod, interp.Options{Trace: tr, Stdout: os.Stdout, MaxSteps: maxSteps})
	if err != nil {
		return err
	}
	xsp := root.Start("execute")
	xsp.SetAttr("entry", entry)
	ret, err := mach.Run(entry, args...)
	mach.RecordObs(xsp)
	if tr != nil {
		xsp.Add("trace.events", int64(len(tr.Events)))
		for k, n := range tr.KindCounts() {
			xsp.Add("trace.event."+k, int64(n))
		}
	}
	xsp.End()
	if err != nil {
		return err
	}
	fmt.Printf("pmvm: @%s returned %d\n", entry, int64(ret))
	fmt.Printf("pmvm: %d instructions, %.0f simulated ns\n", mach.Steps(), mach.SimTime())
	if n := len(mach.Violations); n > 0 {
		fmt.Printf("pmvm: %d durability violation(s) observed (run pmcheck for details)\n", n)
	} else {
		fmt.Println("pmvm: all PM stores durable at every durability point")
	}
	if tr != nil && traceOut != "" {
		if err := cli.WriteTrace(tr, traceOut); err != nil {
			return err
		}
		fmt.Printf("pmvm: wrote %d trace events to %s\n", len(tr.Events), traceOut)
	}
	root.End()
	return obsFlags.Finish(rec, os.Stdout)
}
