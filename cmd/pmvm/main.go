// Command pmvm runs a pmc program (or textual IR module) on the simulated
// persistent-memory machine and reports its result, simulated time, and
// any durability violations observed at the run's durability points.
//
// Usage:
//
//	pmvm [flags] program.pmc [intarg ...]
//
// Flags:
//
//	-entry NAME    entry function (default "main")
//	-trace FILE    write the PM-operation trace to FILE
//	-print-ir      print the lowered IR instead of running
//	-max-steps N   instruction budget (default 100M)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"hippocrates/internal/cli"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/trace"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	traceOut := flag.String("trace", "", "write the PM trace to this file")
	printIR := flag.Bool("print-ir", false, "print the lowered IR and exit")
	maxSteps := flag.Int64("max-steps", 0, "instruction budget (0 = default)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pmvm [flags] program.pmc [intarg ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Args()[1:], *entry, *traceOut, *printIR, *maxSteps); err != nil {
		fmt.Fprintln(os.Stderr, "pmvm:", err)
		os.Exit(1)
	}
}

func run(path string, argStrs []string, entry, traceOut string, printIR bool, maxSteps int64) error {
	mod, err := cli.LoadModule(path)
	if err != nil {
		return err
	}
	if printIR {
		fmt.Print(ir.Print(mod))
		return nil
	}
	args := make([]uint64, len(argStrs))
	for i, s := range argStrs {
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return fmt.Errorf("argument %q is not an integer", s)
		}
		args[i] = uint64(v)
	}
	var tr *trace.Trace
	if traceOut != "" {
		tr = &trace.Trace{Program: mod.Name}
	}
	mach, err := interp.New(mod, interp.Options{Trace: tr, Stdout: os.Stdout, MaxSteps: maxSteps})
	if err != nil {
		return err
	}
	ret, err := mach.Run(entry, args...)
	if err != nil {
		return err
	}
	fmt.Printf("pmvm: @%s returned %d\n", entry, int64(ret))
	fmt.Printf("pmvm: %d instructions, %.0f simulated ns\n", mach.Steps(), mach.SimTime())
	if n := len(mach.Violations); n > 0 {
		fmt.Printf("pmvm: %d durability violation(s) observed (run pmcheck for details)\n", n)
	} else {
		fmt.Println("pmvm: all PM stores durable at every durability point")
	}
	if tr != nil {
		if err := cli.WriteTrace(tr, traceOut); err != nil {
			return err
		}
		fmt.Printf("pmvm: wrote %d trace events to %s\n", len(tr.Events), traceOut)
	}
	return nil
}
