// Command pmvm runs a pmc program (or textual IR module) on the simulated
// persistent-memory machine and reports its result, simulated time, and
// any durability violations observed at the run's durability points.
//
// Usage:
//
//	pmvm [flags] program.pmc [intarg ...]
//
// Flags:
//
//	-entry NAME      entry function (default "main")
//	-trace FILE      write the PM-operation trace to FILE
//	-print-ir        print the lowered IR instead of running
//	-steplimit N     instruction budget per run (default 100M)
//	-crash           crash-schedule validation: crash the program at PM
//	                 event boundaries and run its recovery entries on
//	                 every feasible post-crash image (exit 1 on failure)
//	-invariant NAME  structural recovery entry for -crash
//	                 (default invariant_check; "-" disables)
//	-recovery NAME   durability-promise recovery entry for -crash
//	                 (default crash_check; "-" disables)
//	-crash-points N  crash-point budget for -crash (default 256)
//	-crash-images N  per-point schedule budget for -crash (default 16)
//	-no-dedup        disable content-addressed verdict dedup for -crash:
//	                 boot recovery on every schedule even when its image
//	                 is byte-identical to one already judged
//	-metrics FILE    write counters/histograms/phase timings as JSON
//	-spans FILE      write the span tree as Chrome trace_event JSON
//	-audit           print the repair audit trail (always empty here: pmvm
//	                 executes, it never repairs)
//
// The -crash path runs through cli.Run, the same entrypoint hippocrates
// and hippocratesd use.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"hippocrates/internal/cli"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/trace"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	traceOut := flag.String("trace", "", "write the PM trace to this file")
	printIR := flag.Bool("print-ir", false, "print the lowered IR and exit")
	crash := flag.Bool("crash", false, "crash-schedule validation instead of a plain run")
	invariant := flag.String("invariant", "", "structural recovery entry for -crash (default invariant_check)")
	recovery := flag.String("recovery", "", "durability-promise recovery entry for -crash (default crash_check)")
	crashPoints := flag.Int("crash-points", 0, "crash-point budget for -crash (0 = default)")
	crashImages := flag.Int("crash-images", 0, "per-point schedule budget for -crash (0 = default)")
	noDedup := flag.Bool("no-dedup", false, "disable verdict dedup for -crash (debug escape hatch)")
	var limits cli.LimitFlags
	limits.Register()
	var obsFlags cli.ObsFlags
	obsFlags.Register()
	flag.Parse()
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "pmvm:", msg)
		os.Exit(2)
	}
	if err := limits.Validate(); err != nil {
		usage(err.Error())
	}
	if !*crash {
		// The crash-validation knobs configure a mode that is off; reject
		// them rather than silently ignoring them.
		switch {
		case *invariant != "":
			usage("-invariant only applies with -crash")
		case *recovery != "":
			usage("-recovery only applies with -crash")
		case *crashPoints != 0:
			usage("-crash-points only applies with -crash")
		case *crashImages != 0:
			usage("-crash-images only applies with -crash")
		case *noDedup:
			usage("-no-dedup only applies with -crash")
		}
	} else {
		if *crashPoints < 0 {
			usage("-crash-points must be >= 0")
		}
		if *crashImages < 0 {
			usage("-crash-images must be >= 0")
		}
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pmvm [flags] program.pmc [intarg ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Args()[1:], *entry, *traceOut, *printIR, *crash,
		*invariant, *recovery, *crashPoints, *crashImages, *noDedup, limits, obsFlags); err != nil {
		fmt.Fprintln(os.Stderr, "pmvm:", err)
		os.Exit(1)
	}
}

func run(path string, argStrs []string, entry, traceOut string, printIR, crash bool,
	invariant, recovery string, crashPoints, crashImages int, noDedup bool,
	limits cli.LimitFlags, obsFlags cli.ObsFlags) error {
	rec := obsFlags.NewRecorder()
	root := rec.StartSpan("pmvm")
	root.SetAttr("program", path)

	args := make([]uint64, len(argStrs))
	for i, s := range argStrs {
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return fmt.Errorf("argument %q is not an integer", s)
		}
		args[i] = uint64(v)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	req := &cli.Request{
		Program:     filepath.Base(path),
		Source:      string(src),
		Mode:        cli.ModeCrash,
		Entry:       entry,
		Args:        args,
		Invariant:   invariant,
		Recovery:    recovery,
		CrashPoints: crashPoints,
		CrashImages: crashImages,
		NoDedup:     noDedup,
		StepLimit:   limits.StepLimit,
		CrashLog:    os.Stdout,
	}
	if !crash {
		// Compile-only request shape: the plain run below executes the
		// module itself (stdout, violations, simulated time).
		req.Mode = cli.ModeCheck
	}

	if crash {
		resp, err := cli.Run(req, root)
		if err != nil {
			return err
		}
		fmt.Print(resp.CrashReport.Summary())
		root.End()
		if err := obsFlags.Finish(rec, os.Stdout); err != nil {
			return err
		}
		if !resp.Fixed {
			return fmt.Errorf("%d crash point(s) failed recovery", len(resp.CrashReport.Failures))
		}
		return nil
	}

	mod, err := cli.CompileRequest(req, root)
	if err != nil {
		return err
	}
	if printIR {
		fmt.Print(ir.Print(mod))
		return nil
	}

	var tr *trace.Trace
	if traceOut != "" || obsFlags.Enabled() {
		tr = &trace.Trace{Program: mod.Name}
	}
	mach, err := interp.New(mod, interp.Options{Trace: tr, Stdout: os.Stdout, StepLimit: limits.StepLimit})
	if err != nil {
		return err
	}
	xsp := root.Start("execute")
	xsp.SetAttr("entry", entry)
	ret, err := mach.Run(entry, args...)
	mach.RecordObs(xsp)
	if tr != nil {
		xsp.Add("trace.events", int64(len(tr.Events)))
		for k, n := range tr.KindCounts() {
			if n > 0 {
				xsp.Add("trace.event."+trace.Kind(k).String(), int64(n))
			}
		}
	}
	xsp.End()
	if err != nil {
		return err
	}
	fmt.Printf("pmvm: @%s returned %d\n", entry, int64(ret))
	fmt.Printf("pmvm: %d instructions, %.0f simulated ns\n", mach.Steps(), mach.SimTime())
	if n := len(mach.Violations); n > 0 {
		fmt.Printf("pmvm: %d durability violation(s) observed (run pmcheck for details)\n", n)
	} else {
		fmt.Println("pmvm: all PM stores durable at every durability point")
	}
	if tr != nil && traceOut != "" {
		if err := cli.WriteTrace(tr, traceOut); err != nil {
			return err
		}
		fmt.Printf("pmvm: wrote %d trace events to %s\n", len(tr.Events), traceOut)
	}
	root.End()
	return obsFlags.Finish(rec, os.Stdout)
}
