// Command pmvm runs a pmc program (or textual IR module) on the simulated
// persistent-memory machine and reports its result, simulated time, and
// any durability violations observed at the run's durability points.
//
// Usage:
//
//	pmvm [flags] program.pmc [intarg ...]
//
// Flags:
//
//	-entry NAME      entry function (default "main")
//	-trace FILE      write the PM-operation trace to FILE
//	-print-ir        print the lowered IR instead of running
//	-steplimit N     instruction budget per run (default 100M)
//	-crash           crash-schedule validation: crash the program at PM
//	                 event boundaries and run its recovery entries on
//	                 every feasible post-crash image (exit 1 on failure)
//	-invariant NAME  structural recovery entry for -crash
//	                 (default invariant_check; "-" disables)
//	-recovery NAME   durability-promise recovery entry for -crash
//	                 (default crash_check; "-" disables)
//	-crash-points N  crash-point budget for -crash (default 256)
//	-crash-images N  per-point schedule budget for -crash (default 16)
//	-no-dedup        disable content-addressed verdict dedup for -crash:
//	                 boot recovery on every schedule even when its image
//	                 is byte-identical to one already judged
//	-threads         interleaving-aware mode: explore the workload's
//	                 thread schedules (bounded, with persistence-aware
//	                 partial-order reduction) and report the verdict per
//	                 interleaving; with -crash every explored
//	                 interleaving is crash-swept
//	-max-schedules N schedule budget for -threads (0 = default)
//	-sched ID        replay one interleaving on the plain run: "rr" for
//	                 round-robin or a "c:…" id printed by -threads
//	-metrics FILE    write counters/histograms/phase timings as JSON
//	-spans FILE      write the span tree as Chrome trace_event JSON
//	-audit           print the repair audit trail (always empty here: pmvm
//	                 executes, it never repairs)
//
// The -crash path runs through cli.Run, the same entrypoint hippocrates
// and hippocratesd use.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"hippocrates/internal/cli"
	"hippocrates/internal/core"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/schedule"
	"hippocrates/internal/trace"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	traceOut := flag.String("trace", "", "write the PM trace to this file")
	printIR := flag.Bool("print-ir", false, "print the lowered IR and exit")
	crash := flag.Bool("crash", false, "crash-schedule validation instead of a plain run")
	invariant := flag.String("invariant", "", "structural recovery entry for -crash (default invariant_check)")
	recovery := flag.String("recovery", "", "durability-promise recovery entry for -crash (default crash_check)")
	crashPoints := flag.Int("crash-points", 0, "crash-point budget for -crash (0 = default)")
	crashImages := flag.Int("crash-images", 0, "per-point schedule budget for -crash (0 = default)")
	noDedup := flag.Bool("no-dedup", false, "disable verdict dedup for -crash (debug escape hatch)")
	threads := flag.Bool("threads", false, "explore thread interleavings instead of one round-robin run")
	maxSchedules := flag.Int("max-schedules", 0, "schedule budget for -threads (0 = default)")
	sched := flag.String("sched", "", "replay one interleaving on the plain run (\"rr\" or a \"c:…\" id)")
	var limits cli.LimitFlags
	limits.Register()
	var obsFlags cli.ObsFlags
	obsFlags.Register()
	flag.Parse()
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "pmvm:", msg)
		os.Exit(2)
	}
	if err := limits.Validate(); err != nil {
		usage(err.Error())
	}
	if !*crash {
		// The crash-validation knobs configure a mode that is off; reject
		// them rather than silently ignoring them.
		switch {
		case *invariant != "":
			usage("-invariant only applies with -crash")
		case *recovery != "":
			usage("-recovery only applies with -crash")
		case *crashPoints != 0:
			usage("-crash-points only applies with -crash")
		case *crashImages != 0:
			usage("-crash-images only applies with -crash")
		case *noDedup:
			usage("-no-dedup only applies with -crash")
		}
	} else {
		if *crashPoints < 0 {
			usage("-crash-points must be >= 0")
		}
		if *crashImages < 0 {
			usage("-crash-images must be >= 0")
		}
	}
	if !*threads && *maxSchedules != 0 {
		usage("-max-schedules only applies with -threads")
	}
	if *maxSchedules < 0 {
		usage("-max-schedules must be >= 0")
	}
	var schedChoices []int
	if *sched != "" {
		if *threads {
			usage("-sched replays one interleaving; -threads explores many (pick one)")
		}
		if *crash {
			usage("-sched only applies to the plain run (use -crash -threads to sweep interleavings)")
		}
		var err error
		schedChoices, err = interp.ParseScheduleID(*sched)
		if err != nil {
			usage(err.Error())
		}
	}
	if *threads && *traceOut != "" {
		usage("-trace captures a single run; replay one interleaving with -sched instead")
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pmvm [flags] program.pmc [intarg ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := runCfg{
		entry: *entry, traceOut: *traceOut, printIR: *printIR, crash: *crash,
		invariant: *invariant, recovery: *recovery,
		crashPoints: *crashPoints, crashImages: *crashImages, noDedup: *noDedup,
		threads: *threads, maxSchedules: *maxSchedules,
		schedID: *sched, schedChoices: schedChoices,
	}
	if err := run(flag.Arg(0), flag.Args()[1:], cfg, limits, obsFlags); err != nil {
		fmt.Fprintln(os.Stderr, "pmvm:", err)
		os.Exit(1)
	}
}

// runCfg carries the parsed, validated flag set into run.
type runCfg struct {
	entry, traceOut     string
	printIR, crash      bool
	invariant, recovery string
	crashPoints         int
	crashImages         int
	noDedup             bool
	threads             bool
	maxSchedules        int
	schedID             string
	schedChoices        []int
}

func run(path string, argStrs []string, cfg runCfg,
	limits cli.LimitFlags, obsFlags cli.ObsFlags) error {
	rec := obsFlags.NewRecorder()
	root := rec.StartSpan("pmvm")
	root.SetAttr("program", path)

	args := make([]uint64, len(argStrs))
	for i, s := range argStrs {
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return fmt.Errorf("argument %q is not an integer", s)
		}
		args[i] = uint64(v)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	req := &cli.Request{
		Program:      filepath.Base(path),
		Source:       string(src),
		Mode:         cli.ModeCrash,
		Entry:        cfg.entry,
		Args:         args,
		Invariant:    cfg.invariant,
		Recovery:     cfg.recovery,
		CrashPoints:  cfg.crashPoints,
		CrashImages:  cfg.crashImages,
		NoDedup:      cfg.noDedup,
		Threads:      cfg.threads,
		MaxSchedules: cfg.maxSchedules,
		StepLimit:    limits.StepLimit,
		CrashLog:     os.Stdout,
	}
	if !cfg.crash {
		// Compile-only request shape: the plain run below executes the
		// module itself (stdout, violations, simulated time).
		req.Mode = cli.ModeCheck
	}

	if cfg.crash {
		resp, err := cli.Run(req, root)
		if err != nil {
			return err
		}
		var failed int
		if cfg.threads {
			// Threads mode sweeps every explored interleaving; the
			// per-schedule reports replace the single CrashReport.
			failed = printScheduleCrash(resp)
		} else {
			fmt.Print(resp.CrashReport.Summary())
			failed = len(resp.CrashReport.Failures)
		}
		root.End()
		if err := obsFlags.Finish(rec, os.Stdout); err != nil {
			return err
		}
		if !resp.Fixed {
			return fmt.Errorf("%d crash point(s) failed recovery", failed)
		}
		return nil
	}

	mod, err := cli.CompileRequest(req, root)
	if err != nil {
		return err
	}
	if cfg.printIR {
		fmt.Print(ir.Print(mod))
		return nil
	}

	if cfg.threads {
		// Exploration run: execute the workload under every schedule the
		// bounded search (with persistence-aware POR) reaches, and report
		// the verdict per interleaving.
		ex, err := core.ExploreModule(mod, cfg.entry, core.Options{
			Obs: root, StepLimit: limits.StepLimit, MaxSchedules: cfg.maxSchedules,
		}, args...)
		if err != nil {
			return err
		}
		printExploration(cfg.entry, ex)
		root.End()
		return obsFlags.Finish(rec, os.Stdout)
	}

	var tr *trace.Trace
	if cfg.traceOut != "" || obsFlags.Enabled() {
		tr = &trace.Trace{Program: mod.Name}
	}
	mach, err := interp.New(mod, interp.Options{
		Trace: tr, Stdout: os.Stdout, StepLimit: limits.StepLimit,
		Schedule: cfg.schedChoices,
	})
	if err != nil {
		return err
	}
	xsp := root.Start("execute")
	xsp.SetAttr("entry", cfg.entry)
	if cfg.schedID != "" {
		xsp.SetAttr("schedule", cfg.schedID)
	}
	ret, err := mach.Run(cfg.entry, args...)
	mach.RecordObs(xsp)
	if tr != nil {
		xsp.Add("trace.events", int64(len(tr.Events)))
		for k, n := range tr.KindCounts() {
			if n > 0 {
				xsp.Add("trace.event."+trace.Kind(k).String(), int64(n))
			}
		}
	}
	xsp.End()
	if err != nil {
		return err
	}
	fmt.Printf("pmvm: @%s returned %d\n", cfg.entry, int64(ret))
	if cfg.schedID != "" {
		fmt.Printf("pmvm: replayed schedule %s\n", cfg.schedID)
	}
	fmt.Printf("pmvm: %d instructions, %.0f simulated ns\n", mach.Steps(), mach.SimTime())
	if n := len(mach.Violations); n > 0 {
		fmt.Printf("pmvm: %d durability violation(s) observed (run pmcheck for details)\n", n)
	} else {
		fmt.Println("pmvm: all PM stores durable at every durability point")
	}
	if tr != nil && cfg.traceOut != "" {
		if err := cli.WriteTrace(tr, cfg.traceOut); err != nil {
			return err
		}
		fmt.Printf("pmvm: wrote %d trace events to %s\n", len(tr.Events), cfg.traceOut)
	}
	root.End()
	return obsFlags.Finish(rec, os.Stdout)
}

// printExploration renders a plain -threads run: one verdict line per
// explored interleaving plus the search accounting.
func printExploration(entry string, ex *schedule.Result) {
	maxThreads := 0
	for _, r := range ex.Runs {
		if r.Threads > maxThreads {
			maxThreads = r.Threads
		}
	}
	fmt.Printf("pmvm: explored %d interleaving(s) (%d pruned by POR, %d thread(s))\n",
		ex.Explored, ex.Pruned, maxThreads)
	for _, r := range ex.Runs {
		verdict := "clean"
		if r.Check != nil && !r.Check.Clean() {
			verdict = fmt.Sprintf("%d report(s)", len(r.Check.Reports))
		}
		fmt.Printf("pmvm:   %-16s @%s returned %d: %s\n", r.ID, entry, int64(r.Ret), verdict)
	}
	if ex.Truncated {
		fmt.Println("pmvm: schedule budget exhausted with interleavings unexplored (raise -max-schedules)")
	}
	if bad := ex.FirstBuggy(); bad != nil {
		fmt.Printf("pmvm: first buggy schedule %s (replay with -sched %s)\n", bad.ID, bad.ID)
	} else {
		fmt.Println("pmvm: all explored interleavings clean")
	}
}

// printScheduleCrash renders a -crash -threads response: the exploration
// summary plus one pass/fail line per crash-swept interleaving. It
// returns the total failed-schedule count across sweeps.
func printScheduleCrash(resp *cli.Response) int {
	if s := resp.Schedules; s != nil {
		fmt.Printf("pmvm: explored %d interleaving(s) (%d pruned by POR, %d thread(s)), %d crash point(s) swept\n",
			s.Stats.SchedulesExplored, s.Stats.SchedulesPruned, s.Threads, s.Stats.CrashPoints)
	}
	failed := 0
	for _, sc := range resp.CrashBySchedule {
		verdict := "passed"
		if !sc.Report.Passed {
			verdict = fmt.Sprintf("FAILED (%d schedule(s))", len(sc.Report.Failures))
			failed += len(sc.Report.Failures)
		}
		fmt.Printf("pmvm:   %-16s %d crash point(s), %d image(s): %s\n",
			sc.Schedule, sc.Report.Points, sc.Report.Schedules, verdict)
	}
	return failed
}
