// Command hippocratesd is the repair-as-a-service daemon: the Hippocrates
// pipeline behind a long-lived HTTP/JSON API instead of a one-shot CLI.
// Submit a pmc program with the same options the commands take (entry,
// static vs dynamic detection, crashcheck, steplimit/timeout) and receive
// the repaired source, the repair-provenance audit trail, and per-round
// crash verdicts — deterministic JSON, byte-identical across equal
// requests, which is what makes responses cacheable and diffable.
//
// Usage:
//
//	hippocratesd [flags]              serve until SIGTERM (graceful drain)
//	hippocratesd -selftest            replay the corpus against an
//	                                  in-process daemon, write BENCH_server.json
//	hippocratesd -smoke               boot, round-trip one buggy corpus
//	                                  program, schema-validate, exit
//
// Flags:
//
//	-addr HOST:PORT   listen address (default 127.0.0.1:8080)
//	-workers N        worker pool size (default GOMAXPROCS, max 8)
//	-queue N          per-worker queue depth (default 32)
//	-retention N      finished jobs retrievable by ID (default 256)
//	-timeout DUR      default per-job wall-clock budget (default 60s)
//	-job-timeout DUR  server-enforced per-job deadline: kills runaway jobs
//	                  via the interpreter's wall-clock plumbing and answers
//	                  504 with a typed {"kind":"deadline"} error doc
//	                  (overrides -timeout and caps -max-timeout)
//	-id NAME          fleet identity: /healthz reports it and every submit
//	                  outcome carries X-Hippocrates-Backend
//	-max-timeout DUR  ceiling on requested job timeouts (default 5m)
//	-steplimit N      default instruction budget per interpreter run
//	-pprof HOST:PORT  serve net/http/pprof on a separate listener
//	                  (default off; bind loopback — it is unauthenticated)
//	-track-allocs     per-span allocation tracking on every job, so
//	                  /metrics serves per-phase alloc totals (overhead:
//	                  two ReadMemStats per span)
//	-concurrency N    -selftest client workers (default 8)
//	-bench-out FILE   -selftest report path (default BENCH_server.json)
//	-quiet            suppress the per-job log line
//
// API: POST /api/v1/repair (synchronous), POST /api/v1/jobs (async 202),
// GET /api/v1/jobs/{id}, GET /api/v1/jobs/{id}/spans,
// GET /api/v1/debug/flightrecorder, GET /metrics (Prometheus text),
// GET /metrics.json, GET /healthz. Every submit echoes X-Trace-Id
// (inbound X-Trace-Id / W3C traceparent, or generated). A full queue
// answers 429 + Retry-After; draining answers 503 + Retry-After.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hippocrates/internal/obs"
	"hippocrates/internal/server"
	"hippocrates/internal/server/loadgen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, max 8)")
	queue := flag.Int("queue", 0, "per-worker queue depth (0 = 32)")
	retention := flag.Int("retention", 0, "finished jobs retrievable by ID (0 = 256)")
	timeout := flag.Duration("timeout", 0, "default per-job wall-clock budget (0 = 60s)")
	jobTimeout := flag.Duration("job-timeout", 0, "server-enforced per-job deadline: jobs exceeding it are killed via the interpreter's wall-clock plumbing and answered 504 (overrides -timeout; 0 = use -timeout)")
	backendID := flag.String("id", "", "fleet identity: reported by /healthz and stamped as X-Hippocrates-Backend on every submit outcome")
	maxTimeout := flag.Duration("max-timeout", 0, "ceiling on requested job timeouts (0 = 5m)")
	stepLimit := flag.Int64("steplimit", 0, "default instruction budget per interpreter run (0 = 100M)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	trackAllocs := flag.Bool("track-allocs", false, "per-span allocation tracking (per-phase alloc totals on /metrics)")
	selftest := flag.Bool("selftest", false, "replay the corpus against an in-process daemon and write the bench report")
	smoke := flag.Bool("smoke", false, "boot, round-trip one corpus program, schema-validate, exit")
	concurrency := flag.Int("concurrency", 8, "client workers for -selftest")
	benchOut := flag.String("bench-out", "BENCH_server.json", "report path for -selftest")
	quiet := flag.Bool("quiet", false, "suppress the per-job log line")
	flag.Parse()

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Retention:      *retention,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		StepLimit:      *stepLimit,
		TrackAllocs:    *trackAllocs,
		BackendID:      *backendID,
	}
	if *jobTimeout > 0 {
		// -job-timeout is the fleet-facing name for the server-side
		// deadline: it bounds every job (including ones that ask for
		// more) so a router's retry policy can rely on the worker being
		// back within a known horizon.
		cfg.DefaultTimeout = *jobTimeout
		if cfg.MaxTimeout <= 0 || cfg.MaxTimeout > *jobTimeout {
			cfg.MaxTimeout = *jobTimeout
		}
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	var err error
	switch {
	case *selftest:
		err = runSelftest(cfg, *concurrency, *benchOut)
	case *smoke:
		err = runSmoke(cfg)
	default:
		err = serve(cfg, *addr, *pprofAddr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hippocratesd:", err)
		os.Exit(1)
	}
}

// serve runs the daemon until SIGTERM/SIGINT, then drains: accepted jobs
// finish, new submissions get 503, and the listener closes last. A
// non-empty pprofAddr serves the profiler on its own listener so the API
// port never exposes it.
func serve(cfg server.Config, addr, pprofAddr string) error {
	srv := server.New(cfg)
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	var pprofSrv *http.Server
	if pprofAddr != "" {
		pprofSrv = &http.Server{Addr: pprofAddr, Handler: pprofMux()}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				errCh <- fmt.Errorf("pprof listener: %w", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "hippocratesd: pprof on %s\n", pprofAddr)
	}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "hippocratesd: serving on %s\n", addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "hippocratesd: %s: draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if pprofSrv != nil {
		pprofSrv.Shutdown(ctx)
	}
	return httpSrv.Shutdown(ctx)
}

// pprofMux is the explicit profiler mux — the same handlers the
// net/http/pprof blank import would hang on DefaultServeMux, but on a
// dedicated mux for a dedicated listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// boot starts an in-process daemon on an ephemeral port for the selftest
// and smoke paths and returns its base URL plus a shutdown func.
func boot(cfg server.Config) (*server.Server, string, func(), error) {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv.Shutdown(ctx)
		httpSrv.Shutdown(ctx)
	}
	return srv, "http://" + ln.Addr().String(), stop, nil
}

// runSelftest is the load harness: cold + warm corpus replay against an
// in-process daemon, report written to benchOut.
func runSelftest(cfg server.Config, concurrency int, benchOut string) error {
	_, base, stop, err := boot(cfg)
	if err != nil {
		return err
	}
	defer stop()
	rep, err := loadgen.WriteJSON(benchOut, loadgen.Options{
		BaseURL:     base,
		Concurrency: concurrency,
		Log:         os.Stderr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("hippocratesd: selftest: %d targets x2 rounds at concurrency %d\n",
		rep.Targets, rep.Concurrency)
	fmt.Printf("hippocratesd: cold: %.1f jobs/s (p50 %.1f ms, p99 %.1f ms), hit ratio %.2f\n",
		rep.Cold.Throughput, rep.Cold.P50MS, rep.Cold.P99MS, rep.Cold.HitRatio)
	fmt.Printf("hippocratesd: warm: %.1f jobs/s (p50 %.1f ms, p99 %.1f ms), %.1fx speedup, hit ratio %.2f (aggregate %.2f)\n",
		rep.Warm.Throughput, rep.Warm.P50MS, rep.Warm.P99MS, rep.WarmSpeedup, rep.Warm.HitRatio, rep.CacheHitRatio)
	fmt.Printf("hippocratesd: wrote %s\n", benchOut)
	if rep.Warm.CacheHits == 0 {
		return fmt.Errorf("selftest: warm round hit the response cache 0 times")
	}
	if rep.WarmSpeedup <= 1 {
		return fmt.Errorf("selftest: warm round was not faster than cold (%.2fx)", rep.WarmSpeedup)
	}
	return nil
}

// runSmoke boots the daemon, round-trips one buggy corpus program with
// crash validation on, and schema-validates everything the API serves:
// the repair response, the cache-hit replay (must be byte-identical),
// trace-ID propagation (the supplied X-Trace-Id must come back on the
// submit and reappear in the flight recorder), the Prometheus /metrics
// exposition (content type + linter + the families a dashboard needs),
// /metrics.json (must show a non-zero cache hit ratio), and the flight
// recorder. It is the engine behind `make server-smoke`.
func runSmoke(cfg server.Config) error {
	srv, base, stop, err := boot(cfg)
	if err != nil {
		return err
	}
	defer stop()
	_ = srv

	reqs := loadgen.CorpusRequests()
	if len(reqs) == 0 {
		return fmt.Errorf("smoke: no corpus requests")
	}
	// pclht is the smallest crashsim-able paper target; fall back to the
	// first request if the corpus ever renames it.
	req := reqs[0]
	for _, r := range reqs {
		if r.Program == "pclht.pmc" {
			req = r
			break
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	const traceID = "smoke-trace-0001"
	first, hdr1, err := postOnce(client, base, body, traceID)
	if err != nil {
		return err
	}
	if hdr1.Get("X-Hippocrates-Cache") != "miss" {
		return fmt.Errorf("smoke: first submit was not a cache miss (%q)", hdr1.Get("X-Hippocrates-Cache"))
	}
	if got := hdr1.Get(server.TraceHeader); got != traceID {
		return fmt.Errorf("smoke: submit did not echo the inbound trace ID (got %q, want %q)", got, traceID)
	}
	if err := server.ValidateResponse(first); err != nil {
		return fmt.Errorf("smoke: response does not match schema/response.schema.json: %w", err)
	}
	var doc struct {
		Fixed      bool   `json:"fixed"`
		BugsBefore int    `json:"bugs_before"`
		RepairedIR string `json:"repaired_ir"`
		Audit      []any  `json:"audit"`
		Crash      *struct {
			Passed    bool `json:"passed"`
			Schedules int  `json:"schedules"`
		} `json:"crash"`
	}
	if err := json.Unmarshal(first, &doc); err != nil {
		return err
	}
	switch {
	case doc.BugsBefore == 0:
		return fmt.Errorf("smoke: %s reported no bugs before repair", req.Program)
	case !doc.Fixed:
		return fmt.Errorf("smoke: %s was not fully repaired", req.Program)
	case doc.RepairedIR == "":
		return fmt.Errorf("smoke: response carries no repaired IR")
	case len(doc.Audit) == 0:
		return fmt.Errorf("smoke: response carries no audit trail")
	case doc.Crash == nil || !doc.Crash.Passed || doc.Crash.Schedules == 0:
		return fmt.Errorf("smoke: crash validation missing or failing")
	}
	fmt.Printf("hippocratesd: smoke: %s repaired (%d bug(s), %d audit entries, %d crash schedule(s) pass)\n",
		req.Program, doc.BugsBefore, len(doc.Audit), doc.Crash.Schedules)

	second, hdr2, err := postOnce(client, base, body, "")
	if err != nil {
		return err
	}
	if hdr2.Get("X-Hippocrates-Cache") != "hit" {
		return fmt.Errorf("smoke: identical resubmit was not a cache hit (%q)", hdr2.Get("X-Hippocrates-Cache"))
	}
	if string(first) != string(second) {
		return fmt.Errorf("smoke: cached response differs from the original (%d vs %d bytes)", len(first), len(second))
	}
	if got := hdr2.Get(server.TraceHeader); got == "" || got == traceID {
		return fmt.Errorf("smoke: resubmit trace ID %q should be fresh, not empty or the first request's", got)
	}
	fmt.Println("hippocratesd: smoke: identical resubmit served byte-identically from the response cache")

	// The job's span tree must be retrievable by ID.
	jobID := hdr1.Get("X-Hippocrates-Job")
	spansResp, err := client.Get(base + "/api/v1/jobs/" + jobID + "/spans")
	if err != nil {
		return err
	}
	spans, err := io.ReadAll(spansResp.Body)
	spansResp.Body.Close()
	if err != nil {
		return err
	}
	if spansResp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: GET spans for %s: HTTP %d", jobID, spansResp.StatusCode)
	}
	var spansDoc struct {
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(spans, &spansDoc); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, sp := range spansDoc.Spans {
		seen[sp.Name] = true
	}
	for _, phase := range []string{"job", "trace", "detect", "plan", "apply", "revalidate", "crashsim"} {
		if !seen[phase] {
			return fmt.Errorf("smoke: job span tree is missing phase %q", phase)
		}
	}
	fmt.Printf("hippocratesd: smoke: span tree for %s covers the full pipeline\n", jobID)

	// The Prometheus exposition: right content type, passes the linter,
	// and carries the families a dashboard would actually scrape.
	promResp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	prom, err := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err != nil {
		return err
	}
	if ct := promResp.Header.Get("Content-Type"); ct != server.PromContentType {
		return fmt.Errorf("smoke: /metrics content type %q, want %q", ct, server.PromContentType)
	}
	if err := obs.LintProm(prom); err != nil {
		return fmt.Errorf("smoke: /metrics fails the exposition linter: %w", err)
	}
	for _, want := range []string{
		"hippocratesd_queue_depth{",
		"hippocratesd_phase_latency_ns{",
		"hippocratesd_jobs_total{",
		"hippocratesd_cache_events_total{",
	} {
		if !strings.Contains(string(prom), want) {
			return fmt.Errorf("smoke: /metrics exposition is missing %q", want)
		}
	}
	fmt.Printf("hippocratesd: smoke: /metrics exposition lints clean (%d bytes)\n", len(prom))

	metricsResp, err := client.Get(base + "/metrics.json")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		return err
	}
	if err := server.ValidateMetrics(metrics); err != nil {
		return fmt.Errorf("smoke: /metrics.json does not match schema/metrics.schema.json: %w", err)
	}
	var m struct {
		Cache struct {
			HitRatio float64 `json:"hit_ratio"`
		} `json:"cache"`
		Jobs struct {
			Completed int64 `json:"completed"`
			Failed    int64 `json:"failed"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(metrics, &m); err != nil {
		return err
	}
	if m.Cache.HitRatio <= 0 {
		return fmt.Errorf("smoke: /metrics.json cache hit ratio is %v, want > 0", m.Cache.HitRatio)
	}
	if m.Jobs.Failed != 0 {
		return fmt.Errorf("smoke: /metrics.json reports %d failed job(s)", m.Jobs.Failed)
	}
	fmt.Printf("hippocratesd: smoke: /metrics.json valid (hit ratio %.2f, %d job(s) completed)\n",
		m.Cache.HitRatio, m.Jobs.Completed)

	// The flight recorder must have retained the job — one completed job
	// always ranks among the N slowest — under the trace ID we supplied.
	frResp, err := client.Get(base + "/api/v1/debug/flightrecorder")
	if err != nil {
		return err
	}
	fr, err := io.ReadAll(frResp.Body)
	frResp.Body.Close()
	if err != nil {
		return err
	}
	if err := server.ValidateFlightRecorder(fr); err != nil {
		return fmt.Errorf("smoke: flight recorder does not match schema/flightrecorder.schema.json: %w", err)
	}
	var frDoc struct {
		Slowest []struct {
			JobID   string `json:"job_id"`
			TraceID string `json:"trace_id"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(fr, &frDoc); err != nil {
		return err
	}
	if len(frDoc.Slowest) == 0 {
		return fmt.Errorf("smoke: flight recorder retained no slow jobs after a completed job")
	}
	if frDoc.Slowest[0].TraceID != traceID {
		return fmt.Errorf("smoke: flight recorder trace ID %q, want %q", frDoc.Slowest[0].TraceID, traceID)
	}
	fmt.Printf("hippocratesd: smoke: flight recorder retained %s under trace %s\n",
		frDoc.Slowest[0].JobID, frDoc.Slowest[0].TraceID)
	fmt.Println("hippocratesd: smoke: OK")
	return nil
}

// postOnce submits one synchronous repair (under the given trace ID when
// non-empty) and returns body + headers.
func postOnce(client *http.Client, base string, body []byte, traceID string) ([]byte, http.Header, error) {
	httpReq, err := http.NewRequest(http.MethodPost, base+"/api/v1/repair", bytesReader(body))
	if err != nil {
		return nil, nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		httpReq.Header.Set(server.TraceHeader, traceID)
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("POST /api/v1/repair: HTTP %d: %s", resp.StatusCode, data)
	}
	return data, resp.Header, nil
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
