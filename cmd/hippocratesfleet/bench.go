package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"hippocrates/internal/fleet/chaos"
	"hippocrates/internal/server/loadgen"
)

// benchReport is the BENCH_fleet.json document. The numbers come with
// their context: on a single-CPU host, N in-process backends share one
// core, so cold (CPU-bound) throughput cannot scale with N — the
// honest expectation there is ~1.0x, and what the fleet buys instead is
// fault tolerance (the kill drill) and per-node cache locality (warm
// scaling and the preserved hit ratio).
type benchReport struct {
	GOMAXPROCS        int    `json:"gomaxprocs"`
	NumCPU            int    `json:"num_cpu"`
	WorkersPerBackend int    `json:"workers_per_backend"`
	Targets           int    `json:"targets"`
	Note              string `json:"note"`
	Config            struct {
		CrashPoints int   `json:"crash_points"`
		CrashImages int   `json:"crash_images"`
		StepLimit   int64 `json:"step_limit"`
	} `json:"config"`
	Scale []scaleEntry `json:"scale"`
	// ColdScaling3v1 / WarmScaling3v1 are N=3 over N=1 throughput.
	ColdScaling3v1 float64    `json:"cold_scaling_3v1"`
	WarmScaling3v1 float64    `json:"warm_scaling_3v1"`
	Kill           *killDrill `json:"kill"`
}

type scaleEntry struct {
	Backends     int     `json:"backends"`
	ColdJobsSec  float64 `json:"cold_jobs_per_sec"`
	WarmJobsSec  float64 `json:"warm_jobs_per_sec"`
	ColdP99MS    float64 `json:"cold_p99_ms"`
	WarmP99MS    float64 `json:"warm_p99_ms"`
	WarmHitRatio float64 `json:"warm_hit_ratio"`
	WarmSpeedup  float64 `json:"warm_speedup"`
}

// killDrill is the fault-tolerance headline: a backend killed mid-load,
// with the zero-loss ledger and client-observed tail latency.
type killDrill struct {
	Jobs         int     `json:"jobs"`
	Accepted     int     `json:"accepted"`
	AcceptedLost int     `json:"accepted_lost"`
	Mismatched   int     `json:"mismatched"`
	P99MS        float64 `json:"p99_ms"`
	WallMS       float64 `json:"wall_ms"`
	ConnRetries  float64 `json:"conn_retries"`
}

func runBench(logw io.Writer, path string, workers int) int {
	rep := &benchReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		WorkersPerBackend: workers,
		Note: "in-process backends share this host's cores; cold throughput scales with " +
			"spare CPU, not with backend count, so on a saturated or single-core host " +
			"cold_scaling_3v1 ~ 1.0 is the physical ceiling",
	}
	rep.Config.CrashPoints = loadgen.CrashPoints
	rep.Config.CrashImages = loadgen.CrashImages
	rep.Config.StepLimit = loadgen.StepLimit

	for _, n := range []int{1, 2, 3} {
		fmt.Fprintf(logw, "bench-fleet: scale run: %d backend(s) x %d worker(s)\n", n, workers)
		entry, targets, err := benchScale(n, workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-fleet: N=%d: %v\n", n, err)
			return 1
		}
		rep.Targets = targets
		rep.Scale = append(rep.Scale, *entry)
		fmt.Fprintf(logw, "bench-fleet: N=%d: cold %.1f jobs/s, warm %.1f jobs/s (hit ratio %.2f)\n",
			n, entry.ColdJobsSec, entry.WarmJobsSec, entry.WarmHitRatio)
	}
	if rep.Scale[0].ColdJobsSec > 0 {
		rep.ColdScaling3v1 = rep.Scale[2].ColdJobsSec / rep.Scale[0].ColdJobsSec
	}
	if rep.Scale[0].WarmJobsSec > 0 {
		rep.WarmScaling3v1 = rep.Scale[2].WarmJobsSec / rep.Scale[0].WarmJobsSec
	}

	fmt.Fprintln(logw, "bench-fleet: kill drill: 3 backends, one killed mid-load")
	drill, err := benchKill(logw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-fleet: kill drill:", err)
		return 1
	}
	rep.Kill = drill
	if drill.AcceptedLost != 0 || drill.Mismatched != 0 {
		fmt.Fprintf(os.Stderr, "bench-fleet: kill drill HARMED jobs: %d lost, %d mismatched\n",
			drill.AcceptedLost, drill.Mismatched)
		return 1
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-fleet:", err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench-fleet:", err)
		return 1
	}
	fmt.Fprintf(logw, "bench-fleet: cold 3v1 %.2fx, warm 3v1 %.2fx, kill p99 %.1f ms; wrote %s\n",
		rep.ColdScaling3v1, rep.WarmScaling3v1, drill.P99MS, path)
	return 0
}

// benchScale boots an N-backend fleet and runs the standard cold+warm
// corpus replay through the router.
func benchScale(n, workers int) (*scaleEntry, int, error) {
	tf, err := chaos.NewTestFleet(chaos.FleetOptions{Backends: n, Workers: workers})
	if err != nil {
		return nil, 0, err
	}
	defer tf.Close()
	rep, err := loadgen.Run(loadgen.Options{
		BaseURL:     tf.RouterURL(),
		Concurrency: 8,
		Client:      &http.Client{Timeout: 5 * time.Minute},
		ProbeURLs:   tf.BackendURLs(),
		SampleEvery: -1,
	})
	if err != nil {
		return nil, 0, err
	}
	return &scaleEntry{
		Backends:     n,
		ColdJobsSec:  rep.Cold.Throughput,
		WarmJobsSec:  rep.Warm.Throughput,
		ColdP99MS:    rep.Cold.P99MS,
		WarmP99MS:    rep.Warm.P99MS,
		WarmHitRatio: rep.Warm.HitRatio,
		WarmSpeedup:  rep.WarmSpeedup,
	}, rep.Targets, nil
}

// benchKill reuses the chaos kill scenario and distills its ledger.
func benchKill(logw io.Writer) (*killDrill, error) {
	want, base, err := chaos.Baselines()
	if err != nil {
		return nil, err
	}
	res, err := chaos.RunScenario("kill-backend", want, base, logw)
	if err != nil {
		return nil, err
	}
	return &killDrill{
		Jobs:         res.Jobs,
		Accepted:     res.Accepted,
		AcceptedLost: res.Jobs - res.Accepted,
		Mismatched:   len(res.Harm),
		P99MS:        res.P99MS,
		WallMS:       res.WallMS,
		ConnRetries:  res.Router.RetriesConn,
	}, nil
}
