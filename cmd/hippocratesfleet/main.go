// Command hippocratesfleet is the fleet router: a consistent-hash HTTP
// load balancer over N hippocratesd backends. Jobs route by source key
// (the artifact-cache key), so every replay of one program lands on the
// same backend and both per-node caches stay hot. The router health-
// checks its backends, fails over on transport errors with bounded
// exponential backoff, routes around draining nodes, circuit-breaks
// flapping ones, and can hedge slow requests with a duplicate attempt —
// safe because hippocratesd's replay contract is byte-identical
// responses for identical requests.
//
// Usage:
//
//	hippocratesfleet -backends URL,URL,...   route over running daemons
//	hippocratesfleet -spawn N                boot N in-process backends
//	                                         and route over them
//	hippocratesfleet -smoke                  run the chaos suite as a CI
//	                                         gate (kill/drain/latency/
//	                                         reset; zero harm required)
//	                                         + lint the router's /metrics
//	hippocratesfleet -chaos                  chaos suite, verbose JSON
//	hippocratesfleet -bench                  cold/warm throughput at
//	                                         N=1,2,3 backends plus a
//	                                         kill drill; writes
//	                                         BENCH_fleet.json
//
// Flags:
//
//	-addr HOST:PORT    router listen address (default 127.0.0.1:8090)
//	-backends URLS     comma-separated backend base URLs
//	-spawn N           boot N in-process hippocratesd backends instead
//	-workers N         per-spawned-backend worker pool (default 2)
//	-hedge-after DUR   duplicate slow requests after DUR (default off)
//	-probe-interval D  health-poll period (default 500ms)
//	-bench-out FILE    -bench report path (default BENCH_fleet.json)
//	-quiet             suppress progress lines
//
// Router API: POST /api/v1/repair and POST /api/v1/jobs (proxied),
// GET /healthz (per-backend verdicts), GET /metrics (Prometheus text,
// hippocratesfleet_* families), GET /metrics.json (fleet-aggregated
// queue state, loadgen-sampler compatible). When no backend can take a
// job the router answers 503 + jittered Retry-After — the same contract
// a draining daemon gives, so clients need no router-specific handling.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hippocrates/internal/fleet"
	"hippocrates/internal/fleet/chaos"
	"hippocrates/internal/obs"
	"hippocrates/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8090", "router listen address")
		backends      = flag.String("backends", "", "comma-separated backend base URLs")
		spawn         = flag.Int("spawn", 0, "boot N in-process hippocratesd backends")
		workers       = flag.Int("workers", 2, "worker pool per spawned backend")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge slow requests after this long (0 = off)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "health-poll period")
		smoke         = flag.Bool("smoke", false, "run the chaos suite as a pass/fail gate")
		chaosMode     = flag.Bool("chaos", false, "run the chaos suite, print verbose JSON results")
		bench         = flag.Bool("bench", false, "measure fleet throughput and the kill drill")
		benchOut      = flag.String("bench-out", "BENCH_fleet.json", "-bench report path")
		quiet         = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	logw := io.Writer(os.Stderr)
	if *quiet {
		logw = io.Discard
	}

	switch {
	case *smoke:
		os.Exit(runSmoke(logw))
	case *chaosMode:
		os.Exit(runChaos(logw))
	case *bench:
		os.Exit(runBench(logw, *benchOut, *workers))
	}

	if err := serve(*addr, *backends, *spawn, *workers, *hedgeAfter, *probeInterval, logw); err != nil {
		fmt.Fprintln(os.Stderr, "hippocratesfleet:", err)
		os.Exit(1)
	}
}

// serve routes over external or spawned backends until SIGINT/SIGTERM.
func serve(addr, backendList string, spawn, workers int, hedgeAfter, probeInterval time.Duration, logw io.Writer) error {
	var members []fleet.Backend
	var spawned []*spawnedBackend
	switch {
	case spawn > 0 && backendList != "":
		return fmt.Errorf("-spawn and -backends are mutually exclusive")
	case spawn > 0:
		for i := 0; i < spawn; i++ {
			sb, err := spawnBackend(fmt.Sprintf("fleet-%d", i), workers)
			if err != nil {
				return err
			}
			spawned = append(spawned, sb)
			members = append(members, fleet.Backend{Name: sb.name, URL: sb.url})
			fmt.Fprintf(logw, "hippocratesfleet: spawned backend %s at %s\n", sb.name, sb.url)
		}
	case backendList != "":
		for i, raw := range strings.Split(backendList, ",") {
			url := strings.TrimRight(strings.TrimSpace(raw), "/")
			if url == "" {
				continue
			}
			name := backendIdentity(url)
			if name == "" {
				name = fmt.Sprintf("b%d", i)
			}
			members = append(members, fleet.Backend{Name: name, URL: url})
		}
		if len(members) == 0 {
			return fmt.Errorf("-backends lists no usable URLs")
		}
	default:
		return fmt.Errorf("need -backends or -spawn (or a mode flag; see -h)")
	}

	rt, err := fleet.New(fleet.Config{
		Backends:      members,
		ProbeInterval: probeInterval,
		HedgeAfter:    hedgeAfter,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpd := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpd.Serve(ln) }()
	fmt.Fprintf(logw, "hippocratesfleet: routing over %d backend(s) at http://%s\n", len(members), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(logw, "hippocratesfleet: %s: shutting down\n", s)
	case err := <-errc:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpd.Shutdown(ctx)
	for _, sb := range spawned {
		dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if err := sb.srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(logw, "hippocratesfleet: drain %s: %v\n", sb.name, err)
		}
		dcancel()
		sb.httpd.Close()
	}
	return nil
}

type spawnedBackend struct {
	name  string
	url   string
	srv   *server.Server
	httpd *http.Server
}

func spawnBackend(name string, workers int) (*spawnedBackend, error) {
	srv := server.New(server.Config{Workers: workers, BackendID: name})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpd := &http.Server{Handler: srv.Handler()}
	go httpd.Serve(ln)
	return &spawnedBackend{name: name, url: "http://" + ln.Addr().String(), srv: srv, httpd: httpd}, nil
}

// backendIdentity asks a backend's /healthz for its -id.
func backendIdentity(url string) string {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var doc struct {
		BackendID string `json:"backend_id"`
	}
	if json.NewDecoder(resp.Body).Decode(&doc) != nil {
		return ""
	}
	return doc.BackendID
}

// runSmoke is the CI gate: the full chaos suite must pass with zero
// harm, and the router's /metrics must lint.
func runSmoke(logw io.Writer) int {
	fmt.Fprintln(logw, "hippocratesfleet: smoke: chaos suite (kill, drain, latency+hedge, resets)")
	results, err := chaos.RunAll(logw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet-smoke: harness:", err)
		return 1
	}
	bad := 0
	for _, res := range results {
		if !res.OK() {
			doc, _ := json.MarshalIndent(res, "", "  ")
			fmt.Fprintf(os.Stderr, "fleet-smoke: scenario %s FAILED:\n%s\n", res.Scenario, doc)
			bad++
		}
	}
	if err := lintRouterMetrics(logw); err != nil {
		fmt.Fprintln(os.Stderr, "fleet-smoke: metrics lint:", err)
		bad++
	}
	if bad > 0 {
		return 1
	}
	fmt.Fprintln(logw, "hippocratesfleet: smoke: all scenarios zero-harm, metrics lint clean")
	return 0
}

// lintRouterMetrics boots a tiny fleet, pushes one job through, and
// lints the router's Prometheus output with the shared linter.
func lintRouterMetrics(logw io.Writer) error {
	tf, err := chaos.NewTestFleet(chaos.FleetOptions{Backends: 2, Workers: 1})
	if err != nil {
		return err
	}
	defer tf.Close()
	body := `{"program":"lint.pmc","source":"fn main() {}","mode":"check"}`
	resp, err := http.Post(tf.RouterURL()+"/api/v1/repair", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	mresp, err := http.Get(tf.RouterURL() + "/metrics")
	if err != nil {
		return err
	}
	defer mresp.Body.Close()
	data, err := io.ReadAll(mresp.Body)
	if err != nil {
		return err
	}
	if err := obs.LintProm(data); err != nil {
		return fmt.Errorf("%w\n%s", err, data)
	}
	fmt.Fprintf(logw, "hippocratesfleet: smoke: router /metrics lints (%d bytes)\n", len(data))
	return nil
}

// runChaos runs the suite and prints every scenario's full JSON result.
func runChaos(logw io.Writer) int {
	results, err := chaos.RunAll(logw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	doc, _ := json.MarshalIndent(results, "", "  ")
	fmt.Println(string(doc))
	for _, res := range results {
		if !res.OK() {
			return 1
		}
	}
	return 0
}
