// Command pmcheck is the durability-bug finder: the repository's
// pmemcheck. It either executes a program and checks the resulting PM
// trace, replays a previously saved trace, or — with -static — analyzes
// the program without running it at all.
//
// Usage:
//
//	pmcheck [flags] program.pmc
//	pmcheck -replay trace.pmtrace
//	pmcheck -static program.pmc
//
// Flags:
//
//	-entry NAME    entry function (default "main")
//	-trace FILE    also save the generated trace
//	-replay FILE   analyze an existing trace instead of running
//	-static        static persistency-state analysis; no execution
//	-optimize      prove-and-apply redundant flush/fence elimination on
//	               the program as given (reported, never written)
//	-threads       interleaving-aware check: explore the workload's thread
//	               schedules (bounded, with persistence-aware partial-order
//	               reduction) and report the union of every schedule's bugs
//	-max-schedules N  schedule budget for -threads (0 = default)
//	-steplimit N   instruction budget per interpreter run (default 100M)
//	-metrics FILE  write counters/histograms/phase timings as JSON
//	-spans FILE    write the span tree as Chrome trace_event JSON
//	-audit         print the repair audit trail
//
// -replay analyzes a trace with no program: it cannot honor -entry, a
// positional program argument, or -audit, and rejects those combinations
// instead of silently ignoring them. (-static does honor -entry: it
// selects the analysis root.)
//
// When an observability flag is set and bugs are found, pmcheck runs the
// repair pipeline on the in-memory module — never writing it anywhere —
// so the exported spans and audit trail cover the full
// parse→trace→detect→plan→apply→revalidate tree, not just detection.
//
// Detection runs through cli.Run, the same entrypoint hippocrates and
// hippocratesd use, so the front ends cannot drift.
//
// Exit status is 1 when durability bugs are found.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hippocrates/internal/cli"
	"hippocrates/internal/core"
	"hippocrates/internal/pmcheck"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	saveTrace := flag.String("trace", "", "save the generated trace to this file")
	replay := flag.String("replay", "", "analyze an existing trace file")
	staticMode := flag.Bool("static", false, "static persistency-state analysis instead of executing")
	optimizeFlag := flag.Bool("optimize", false, "prove-and-apply redundant flush/fence elimination on the program as given")
	threads := flag.Bool("threads", false, "interleaving-aware check across explored thread schedules")
	maxSchedules := flag.Int("max-schedules", 0, "schedule budget for -threads (0 = default)")
	var limits cli.LimitFlags
	limits.Register()
	var obsFlags cli.ObsFlags
	obsFlags.Register()
	flag.Parse()

	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(2)
	}
	if err := limits.Validate(); err != nil {
		usage("pmcheck: " + err.Error())
	}
	stepLimitSet := false
	flag.Visit(func(f *flag.Flag) { stepLimitSet = stepLimitSet || f.Name == "steplimit" })
	if *replay != "" {
		// A replayed trace carries no program, so flags that select or
		// inspect one cannot be honored; reject them rather than letting
		// them pass without effect (mirroring the -static checks below).
		entrySet := false
		flag.Visit(func(f *flag.Flag) { entrySet = entrySet || f.Name == "entry" })
		switch {
		case *staticMode:
			usage("pmcheck: -replay and -static are mutually exclusive")
		case entrySet:
			usage("pmcheck: -replay analyzes a saved trace; -entry has no effect (drop it)")
		case stepLimitSet:
			usage("pmcheck: -replay never executes; -steplimit has no effect (drop it)")
		case flag.NArg() > 0:
			usage("pmcheck: -replay takes no program argument (got " + flag.Arg(0) + ")")
		case obsFlags.Audit:
			usage("pmcheck: -audit needs the program to repair; it cannot be combined with -replay")
		case *optimizeFlag:
			usage("pmcheck: -optimize re-executes the program; it cannot be combined with -replay")
		}
	}
	if *staticMode && stepLimitSet {
		usage("pmcheck: -static never executes; -steplimit has no effect (drop it)")
	}
	if *staticMode && *optimizeFlag {
		usage("pmcheck: -optimize measures executions; it cannot be combined with -static")
	}
	if *threads {
		switch {
		case *replay != "":
			usage("pmcheck: -threads explores interleavings; it cannot be combined with -replay")
		case *staticMode:
			usage("pmcheck: -threads needs dynamic execution; it cannot be combined with -static")
		case *optimizeFlag:
			usage("pmcheck: -optimize measures single-schedule executions; it cannot be combined with -threads")
		case *saveTrace != "":
			usage("pmcheck: -trace captures a single run; it cannot be combined with -threads")
		}
	} else if *maxSchedules != 0 {
		usage("pmcheck: -max-schedules only applies with -threads")
	}
	if *maxSchedules < 0 {
		usage("pmcheck: -max-schedules must be >= 0")
	}

	rec := obsFlags.NewRecorder()
	root := rec.StartSpan("pmcheck")
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pmcheck:", err)
		os.Exit(1)
	}
	finish := func() {
		root.End()
		if err := obsFlags.Finish(rec, os.Stdout); err != nil {
			fail(err)
		}
	}

	// -replay is the one path with no program behind it: analyze the
	// trace directly, there is nothing for cli.Run to compile or repair.
	if *replay != "" {
		tr, err := cli.LoadTrace(*replay)
		if err != nil {
			fail(err)
		}
		if *saveTrace != "" {
			if err := cli.WriteTrace(tr, *saveTrace); err != nil {
				fail(err)
			}
		}
		res := pmcheck.CheckObs(root, tr)
		fmt.Print(res.Summary())
		finish()
		if !res.Clean() {
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		if *staticMode {
			usage("usage: pmcheck -static [-entry NAME] program.pmc")
		}
		fmt.Fprintln(os.Stderr, "usage: pmcheck [flags] program.pmc | pmcheck -replay trace.pmtrace")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *staticMode && *saveTrace != "" {
		usage("usage: pmcheck -static [-entry NAME] program.pmc")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	req := &cli.Request{
		Program:      filepath.Base(flag.Arg(0)),
		Source:       string(src),
		Mode:         cli.ModeCheck,
		Entry:        *entry,
		Static:       *staticMode,
		Optimize:     *optimizeFlag,
		Threads:      *threads,
		MaxSchedules: *maxSchedules,
		StepLimit:    limits.StepLimit,
	}
	// With observability on, detection alone would leave the exported
	// spans and audit trail covering half the pipeline; run the full
	// repair instead (in memory, never written) and report its Before.
	// For static mode the repair path is exact, so it substitutes
	// directly; the dynamic shadow repair below tolerates failure.
	if *staticMode && obsFlags.Enabled() {
		req.Mode = cli.ModeRepair
	}
	resp, err := cli.Run(req, root)
	if err != nil {
		fail(err)
	}
	if *saveTrace != "" && resp.Trace != nil {
		if err := cli.WriteTrace(resp.Trace, *saveTrace); err != nil {
			fail(err)
		}
	}
	var clean bool
	switch {
	case *threads:
		// Union verdict across the exploration: the summary mirrors the
		// single-run one but names the interleaving that exposed the bugs.
		s := resp.Schedules
		fmt.Printf("pmcheck: explored %d interleaving(s) (%d pruned by POR, %d thread(s))\n",
			s.Stats.SchedulesExplored, s.Stats.SchedulesPruned, s.Threads)
		if len(resp.Reports) == 0 {
			fmt.Println("pmcheck: no durability bugs found under any explored interleaving")
		} else {
			fmt.Printf("pmcheck: %d durability bug(s) in the union across schedules:\n", len(resp.Reports))
			for i, r := range resp.Reports {
				fmt.Printf("[%d] %s\n", i+1, r)
			}
			fmt.Printf("pmcheck: first buggy schedule %s (replay with pmvm -sched)\n", s.BuggySchedule)
		}
		clean = resp.Fixed
	case resp.StaticCheck != nil:
		fmt.Print(resp.StaticCheck.Summary())
		clean = resp.StaticCheck.Clean()
	case resp.StaticResult != nil:
		fmt.Print(resp.StaticResult.Before.Summary())
		clean = resp.StaticResult.Before.Clean()
	default:
		fmt.Print(resp.Check.Summary())
		clean = resp.Check.Clean()
	}
	if resp.Optimize != nil {
		fmt.Print(resp.Optimize.Summary())
		for _, e := range resp.Optimize.Edits {
			fmt.Printf("  %s\n", e)
		}
	}

	// Shadow repair: with observability on, finish the pipeline in memory
	// (the module is never written) so spans and the audit trail cover
	// plan→apply→revalidate. Failures here are reported but do not change
	// the detection exit status.
	if obsFlags.Enabled() && !clean && resp.Check != nil {
		if _, rerr := core.Repair(resp.Module, resp.Trace, resp.Check, core.Options{Obs: root}); rerr != nil {
			fmt.Fprintln(os.Stderr, "pmcheck: shadow repair:", rerr)
		} else {
			rsp := root.Start("revalidate")
			if tr2, terr := core.TraceModuleOpts(rsp, resp.Module, *entry, core.Options{StepLimit: limits.StepLimit}); terr != nil {
				fmt.Fprintln(os.Stderr, "pmcheck: shadow revalidation:", terr)
			} else {
				pmcheck.CheckObs(rsp, tr2)
			}
			rsp.End()
		}
	}
	finish()
	if !clean {
		os.Exit(1)
	}
}
