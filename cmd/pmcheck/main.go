// Command pmcheck is the durability-bug finder: the repository's
// pmemcheck. It either executes a program and checks the resulting PM
// trace, replays a previously saved trace, or — with -static — analyzes
// the program without running it at all.
//
// Usage:
//
//	pmcheck [flags] program.pmc
//	pmcheck -replay trace.pmtrace
//	pmcheck -static program.pmc
//
// Flags:
//
//	-entry NAME    entry function (default "main")
//	-trace FILE    also save the generated trace
//	-replay FILE   analyze an existing trace instead of running
//	-static        static persistency-state analysis; no execution
//
// Exit status is 1 when durability bugs are found.
package main

import (
	"flag"
	"fmt"
	"os"

	"hippocrates/internal/cli"
	"hippocrates/internal/core"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/static"
	"hippocrates/internal/trace"
)

func main() {
	entry := flag.String("entry", "main", "entry function")
	saveTrace := flag.String("trace", "", "save the generated trace to this file")
	replay := flag.String("replay", "", "analyze an existing trace file")
	staticMode := flag.Bool("static", false, "static persistency-state analysis instead of executing")
	flag.Parse()

	if *staticMode {
		if *replay != "" || *saveTrace != "" || flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pmcheck -static [-entry NAME] program.pmc")
			os.Exit(2)
		}
		m, err := cli.LoadModule(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmcheck:", err)
			os.Exit(1)
		}
		res, err := static.Analyze(m, *entry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmcheck:", err)
			os.Exit(1)
		}
		fmt.Print(res.Summary())
		if !res.Clean() {
			os.Exit(1)
		}
		return
	}

	var tr *trace.Trace
	var err error
	switch {
	case *replay != "":
		tr, err = cli.LoadTrace(*replay)
	case flag.NArg() == 1:
		m, lerr := cli.LoadModule(flag.Arg(0))
		if lerr != nil {
			err = lerr
			break
		}
		tr, err = core.TraceModule(m, *entry)
	default:
		fmt.Fprintln(os.Stderr, "usage: pmcheck [flags] program.pmc | pmcheck -replay trace.pmtrace")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmcheck:", err)
		os.Exit(1)
	}
	if *saveTrace != "" {
		if err := cli.WriteTrace(tr, *saveTrace); err != nil {
			fmt.Fprintln(os.Stderr, "pmcheck:", err)
			os.Exit(1)
		}
	}
	res := pmcheck.Check(tr)
	fmt.Print(res.Summary())
	if !res.Clean() {
		os.Exit(1)
	}
}
