// The crashsweep example demonstrates crash-schedule validation on the
// undo-log transaction target: the crash-injection engine walks the
// program's PM event trace, crashes at store/flush/fence/checkpoint
// boundaries, expands each crash into the feasible post-crash images
// under the per-line eviction model, and runs the program's recovery
// entries on every image. The buggy build fails mid-run schedules; the
// repaired build survives every enumerated and sampled schedule.
//
// Run with: go run ./examples/crashsweep
package main

import (
	"fmt"
	"log"
	"os"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
)

func main() {
	p := corpus.ByName("pmlog")

	buggy := p.MustCompile()
	fmt.Println("== buggy undo-log transactions ==")
	if sweep(buggy, p.Entry) == 0 {
		log.Fatal("buggy build survived every crash schedule?")
	}

	fixed := p.MustCompile()
	res, err := core.RunAndRepair(fixed, p.Entry, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHippocrates applied %d fix(es) (%d interprocedural)\n\n",
		len(res.Fix.Fixes), res.Fix.InterprocFixes())
	fmt.Println("== repaired undo-log transactions ==")
	if sweep(fixed, p.Entry) != 0 {
		log.Fatal("repaired build lost money in a crash!")
	}
}

// sweep validates mod under crash injection and reports how many crash
// schedules its recovery entries rejected.
func sweep(mod *ir.Module, entry string) int {
	rep, err := crashsim.Validate(mod, crashsim.Options{
		Entry:     entry,
		MaxPoints: 96,
		MaxImages: 8,
		Log:       os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d crash points, %d schedules executed: %d failure(s)\n",
		rep.Points, rep.Schedules, len(rep.Failures))
	return len(rep.Failures)
}
