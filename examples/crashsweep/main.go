// The crashsweep example demonstrates exhaustive crash testing on the
// undo-log transaction target: the repaired program is crashed at every
// durability point, and after each crash the recovery code (transaction
// rollback) must restore the bank's conservation invariant. The buggy
// build breaks the invariant at several crash points; the repaired build
// survives all of them.
//
// Run with: go run ./examples/crashsweep
package main

import (
	"errors"
	"fmt"
	"log"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

func main() {
	p := corpus.ByName("pmlog")

	buggy := p.MustCompile()
	fmt.Println("== buggy undo-log transactions ==")
	sweep(buggy, p.Entry)

	fixed := p.MustCompile()
	res, err := core.RunAndRepair(fixed, p.Entry, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHippocrates applied %d fix(es) (%d interprocedural)\n\n",
		len(res.Fix.Fixes), res.Fix.InterprocFixes())
	fmt.Println("== repaired undo-log transactions ==")
	if sweep(fixed, p.Entry) != 0 {
		log.Fatal("repaired build lost money in a crash!")
	}
}

// sweep crashes the program at every durability point and recovers from
// each crash image, returning the number of crash points whose recovery
// violated the conservation invariant.
func sweep(mod *ir.Module, entry string) int {
	probe, err := interp.New(mod, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if ret, err := probe.Run(entry); err != nil || ret != 0 {
		log.Fatalf("clean run failed: ret=%d err=%v", ret, err)
	}
	n := probe.Checkpoints()
	violated := 0
	for k := 1; k <= n; k++ {
		mach, err := interp.New(mod, interp.Options{CrashAtCheckpoint: k})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := mach.Run(entry); !errors.Is(err, interp.ErrSimulatedCrash) {
			log.Fatalf("crash %d: %v", k, err)
		}
		rec, err := interp.New(mod, interp.Options{Memory: mach.CrashImage(nil), ResumePM: true})
		if err != nil {
			log.Fatal(err)
		}
		bad, err := rec.Run("invariant_check")
		if err != nil {
			log.Fatal(err)
		}
		if bad != 0 {
			violated++
		}
	}
	fmt.Printf("crashed at each of %d durability points: %d recovery violation(s)\n", n, violated)
	return violated
}
