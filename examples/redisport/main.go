// The redisport example reproduces §6.3's workflow end to end: strip every
// flush out of Redis-pmem (keeping the fences), let Hippocrates re-derive
// the persistence mechanisms — once with the hoisting heuristic
// (RedisH-full), once without (RedisH-intra) — and race the three builds
// on a small YCSB mix.
//
// Run with: go run ./examples/redisport
package main

import (
	"fmt"
	"log"

	"hippocrates/internal/bench"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/ycsb"
)

func main() {
	builds, err := bench.BuildRedisVariants()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hippocrates re-persisted flush-free Redis with %d fixes (%d interprocedural; hoist depths %v)\n",
		builds.FullFixes, builds.FullInterproc, builds.HoistDepths)
	fmt.Printf("RedisH-intra needed %d intraprocedural fixes\n\n", builds.IntraFixes)

	const records, ops = 400, 400
	for _, pair := range []struct {
		name string
		mod  *ir.Module
	}{
		{"RedisH-intra", builds.Intra},
		{"Redis-pm    ", builds.Baseline},
		{"RedisH-full ", builds.Full},
	} {
		mach, err := interp.New(pair.mod, interp.Options{StepLimit: 1 << 62})
		if err != nil {
			log.Fatal(err)
		}
		for _, op := range ycsb.LoadOps(records) {
			if _, err := mach.Run("cmd_set", uint64(op.Key), uint64(op.Value)); err != nil {
				log.Fatal(err)
			}
		}
		loadNS := mach.SimTime()
		gen := ycsb.NewGenerator(ycsb.WorkloadA, records, 1)
		t0 := mach.SimTime()
		for i := 0; i < ops; i++ {
			op := gen.Next()
			switch op.Kind {
			case ycsb.OpRead:
				_, err = mach.Run("cmd_get", uint64(op.Key))
			default:
				_, err = mach.Run("cmd_set", uint64(op.Key), uint64(op.Value))
			}
			if err != nil {
				log.Fatal(err)
			}
		}
		aNS := mach.SimTime() - t0
		if n := len(mach.Violations); n > 0 {
			log.Fatalf("%s: %d durability violations!", pair.name, n)
		}
		fmt.Printf("%s  load: %7.0f ops/s   workload A: %7.0f ops/s   (durability-clean)\n",
			pair.name,
			float64(records)/(loadNS/1e9),
			float64(ops)/(aNS/1e9))
	}
	fmt.Println("\nthe heuristic keeps flushes off the volatile request path; without it")
	fmt.Println("every parse/reply copy pays a cache-line flush (the paper's §3.2 memcpy tax)")
}
