// The quickstart example walks the whole Hippocrates pipeline on the
// paper's Listing 1: a persistent store that reaches a durability point
// without a flush or fence. It compiles the program, finds the bug with
// the detector, repairs it, and shows that the repaired program survives
// a worst-case crash while the original does not.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hippocrates/internal/core"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
	"hippocrates/internal/pmem"
)

// src is the paper's Listing 1 in pmc: the OID slot is cleared on free,
// but the clear never becomes durable before the crash point.
const src = `
struct oid_slot {
	byte *ptr;
	int pool_id;
};

pm oid_slot slot;

void obj_free(bool if_free) {
	if (if_free) {
		slot.ptr = null;    // the paper's Listing 1 bug
	}
	pm_checkpoint();        // ***CRASH*** may happen here
}

int main() {
	slot.ptr = (byte*) 1234;
	slot.pool_id = 7;
	clwb((byte*) &slot);
	sfence();
	obj_free(true);
	return 0;
}
`

func main() {
	mod, err := lang.Compile("listing1.pmc", src)
	if err != nil {
		log.Fatal(err)
	}

	// Show the bug on a crash image first: run the buggy program and
	// crash at the end with nothing extra reaching PM.
	buggy, err := interp.New(mod, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := buggy.Run("main"); err != nil {
		log.Fatal(err)
	}
	slotAddr := buggy.GlobalAddr("slot")
	img := buggy.CrashImage(nil)
	fmt.Printf("before repair: slot.ptr in memory   = %#x\n", buggy.Mem.ReadUint(slotAddr, 8))
	fmt.Printf("before repair: slot.ptr after crash = %#x   <- the free was lost!\n\n",
		img.ReadUint(slotAddr, 8))

	// Repair: trace -> detect -> fix -> re-validate, as the tool does.
	fixed, err := lang.Compile("listing1.pmc", src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunAndRepair(fixed, "main", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector found %d bug(s); Hippocrates applied %d fix(es):\n",
		len(res.Before.Reports), len(res.Fix.Fixes))
	for _, fx := range res.Fix.Fixes {
		fmt.Println("  -", fx)
	}
	fmt.Println("\nrepaired obj_free:")
	for _, b := range fixed.Func("obj_free").Blocks {
		fmt.Printf("%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Printf("  %s\n", ir.FormatInstr(in))
		}
	}

	// The repaired program survives the same crash.
	after, err := interp.New(fixed, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := after.Run("main"); err != nil {
		log.Fatal(err)
	}
	img2 := after.CrashImage(nil)
	fmt.Printf("\nafter repair:  slot.ptr after crash = %#x   <- durable\n",
		img2.ReadUint(after.GlobalAddr("slot"), 8))
	if d := pmem.DiffPM(img2, after.Mem); d == 0 {
		fmt.Println("after repair:  crash image is byte-identical to PM — no data at risk")
	}
}
