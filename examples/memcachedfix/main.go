// The memcachedfix example repairs the ten durability bugs seeded in the
// memcached-pm slab-cache core (§6.1) and prints where each fix landed —
// including the interprocedural ones the hoisting heuristic placed to keep
// flushes off the volatile request path.
//
// Run with: go run ./examples/memcachedfix
package main

import (
	"fmt"
	"log"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/interp"
	"hippocrates/internal/pmem"
)

func main() {
	p := corpus.MemcachedProgram()
	mod := p.MustCompile()
	res, err := core.RunAndRepair(mod, p.Entry, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector: %d unique buggy store sites (the paper found 10)\n", res.Before.UniqueSites())
	fmt.Printf("fixer: %d fixes, %d interprocedural, %d persistent subprogram(s), %d reduced\n\n",
		len(res.Fix.Fixes), res.Fix.InterprocFixes(), res.Fix.ClonesCreated, res.Fix.ReducedFixes)
	for i, fx := range res.Fix.Fixes {
		fmt.Printf("[%2d] %s\n", i+1, fx)
	}
	if !res.Fixed() {
		log.Fatalf("repair incomplete:\n%s", res.After.Summary())
	}

	// Confirm on the simulated machine: the repaired cache leaves nothing
	// volatile behind.
	mach, err := interp.New(mod, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if ret, err := mach.Run(p.Entry); err != nil || ret != 0 {
		log.Fatalf("workload: ret=%d err=%v", ret, err)
	}
	if d := pmem.DiffPM(mach.CrashImage(nil), mach.Mem); d != 0 {
		log.Fatalf("%d byte(s) still at risk", d)
	}
	fmt.Println("\nrepaired memcached-pm is crash-consistent: worst-case crash image matches PM")
}
