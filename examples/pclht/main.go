// The pclht example repairs the two previously undocumented durability
// bugs in the P-CLHT persistent hash index (§6.1) and demonstrates the
// difference with crash images: the buggy index silently loses committed
// updates across a crash, the repaired one recovers losslessly.
//
// Run with: go run ./examples/pclht
package main

import (
	"fmt"
	"log"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

func main() {
	p := corpus.PCLHTProgram()

	fmt.Println("== buggy P-CLHT ==")
	report(p.MustCompile(), p.Entry, false)

	fmt.Println("\n== after Hippocrates ==")
	fixed := p.MustCompile()
	res, err := core.RunAndRepair(fixed, p.Entry, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Before.Reports {
		fmt.Printf("bug %d: %s\n", i+1, r)
	}
	for _, fx := range res.Fix.Fixes {
		fmt.Println("fix:  ", fx)
	}
	report(fixed, p.Entry, true)
}

// report runs the index workload, crashes, and runs the recovery check on
// the crash image.
func report(mod *ir.Module, entry string, wantClean bool) {
	mach, err := interp.New(mod, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if ret, err := mach.Run(entry); err != nil || ret != 0 {
		log.Fatalf("workload failed: ret=%d err=%v", ret, err)
	}
	img := mach.CrashImage(nil) // worst case: nothing volatile survived
	rec, err := interp.New(mod, interp.Options{Memory: img, ResumePM: true})
	if err != nil {
		log.Fatal(err)
	}
	code, err := rec.Run("crash_check", uint64(mach.Checkpoints()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash recovery: %d committed operation(s) lost\n", code)
	if wantClean && code != 0 {
		log.Fatal("repaired index lost data!")
	}
}
